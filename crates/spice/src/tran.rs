//! Transient analysis.
//!
//! Trapezoidal integration with Newton-Raphson at every time point. MOS
//! intrinsic/junction capacitances are frozen at their DC operating-point
//! values (quasi-static small-capacitance approximation) — adequate for the
//! slew/settling/delay measurements the reproduction needs and documented in
//! `DESIGN.md`. Steps that fail to converge are halved recursively.

use crate::dc::{stamp_nonreactive, OperatingPoint, SourceValue};
use crate::error::SpiceError;
use crate::linalg::Matrix;
use crate::mna::Unknowns;
use ape_netlist::{Circuit, ElementKind, NodeId, Technology};

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy)]
pub struct TranOptions {
    /// Output/base time step, seconds.
    pub tstep: f64,
    /// Stop time, seconds.
    pub tstop: f64,
    /// Maximum Newton iterations per time point.
    pub max_newton: usize,
    /// Maximum number of recursive step halvings before giving up.
    pub max_halvings: usize,
}

impl TranOptions {
    /// Creates options for a run to `tstop` with step `tstep`.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        TranOptions {
            tstep,
            tstop,
            max_newton: 60,
            max_halvings: 12,
        }
    }
}

/// A completed transient simulation: node voltages sampled over time.
#[derive(Debug, Clone)]
pub struct Transient {
    /// Sample times, seconds.
    pub times: Vec<f64>,
    samples: Vec<Vec<f64>>,
    n_nodes: usize,
}

impl Transient {
    /// Voltage of `node` at sample `k`.
    pub fn voltage(&self, k: usize, node: NodeId) -> f64 {
        match node.matrix_row() {
            Some(r) if r < self.n_nodes => self.samples[k][r],
            _ => 0.0,
        }
    }

    /// The full `(t, v)` waveform of a node.
    pub fn waveform(&self, node: NodeId) -> Vec<(f64, f64)> {
        (0..self.times.len())
            .map(|k| (self.times[k], self.voltage(k, node)))
            .collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples were stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// One linear capacitor-like companion element with trapezoidal state.
struct CapState {
    a: NodeId,
    b: NodeId,
    c: f64,
    v_prev: f64,
    i_prev: f64,
}

struct IndState {
    name: String,
    a: NodeId,
    b: NodeId,
    l: f64,
    v_prev: f64,
    i_prev: f64,
}

/// Runs a transient analysis starting from the DC operating point `op`.
///
/// # Errors
///
/// * [`SpiceError::NoConvergence`] if a time step cannot converge even after
///   `max_halvings` halvings.
/// * [`SpiceError::SingularMatrix`] for singular systems.
pub fn transient(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    opts: TranOptions,
) -> Result<Transient, SpiceError> {
    let _span = ape_probe::span("spice.tran");
    ape_probe::counter("spice.tran.runs", 1);
    let u = Unknowns::for_circuit(circuit);
    let n = u.dim();
    let mut x = op.solution().to_vec();
    if x.len() != n {
        return Err(SpiceError::BadCircuit(
            "operating point does not match circuit".into(),
        ));
    }

    // Collect capacitive elements: explicit capacitors plus the five MOS
    // capacitances recorded in the operating point.
    let mut caps: Vec<CapState> = Vec::new();
    let mut inds: Vec<IndState> = Vec::new();
    for e in circuit.elements() {
        match &e.kind {
            ElementKind::Capacitor { farads } => caps.push(CapState {
                a: e.a,
                b: e.b,
                c: *farads,
                v_prev: 0.0,
                i_prev: 0.0,
            }),
            ElementKind::Inductor { henries } => inds.push(IndState {
                name: e.name.clone(),
                a: e.a,
                b: e.b,
                l: *henries,
                v_prev: 0.0,
                i_prev: 0.0,
            }),
            ElementKind::Mosfet { .. } => {
                if let Some(info) = op.mos.get(&e.name) {
                    let pairs = [
                        (info.gate, info.source, info.caps.cgs),
                        (info.gate, info.drain, info.caps.cgd),
                        (info.gate, info.bulk, info.caps.cgb),
                        (info.drain, info.bulk, info.caps.cdb),
                        (info.source, info.bulk, info.caps.csb),
                    ];
                    for (a, b, c) in pairs {
                        if c > 0.0 && a != b {
                            caps.push(CapState {
                                a,
                                b,
                                c,
                                v_prev: 0.0,
                                i_prev: 0.0,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Initialise companion states from the operating point.
    for cs in &mut caps {
        cs.v_prev = u.voltage(&x, cs.a) - u.voltage(&x, cs.b);
        cs.i_prev = 0.0;
    }
    for is in &mut inds {
        is.v_prev = 0.0;
        is.i_prev = u.branch_row_by_name(&is.name).map(|r| x[r]).unwrap_or(0.0);
    }

    let mut times = vec![0.0];
    let mut samples = vec![x[..u.n_nodes].to_vec()];
    let mut t = 0.0;
    let mut mat = Matrix::<f64>::zeros(n);

    while t < opts.tstop - 1e-18 {
        let h_out = opts.tstep.min(opts.tstop - t);
        step_adaptive(
            circuit, tech, &u, &mut x, &mut mat, &mut caps, &mut inds, t, h_out, opts, 0,
        )?;
        t += h_out;
        times.push(t);
        samples.push(x[..u.n_nodes].to_vec());
    }

    Ok(Transient {
        times,
        samples,
        n_nodes: u.n_nodes,
    })
}

/// Advances the solution by `h`, recursively halving on failure.
#[allow(clippy::too_many_arguments)]
fn step_adaptive(
    circuit: &Circuit,
    tech: &Technology,
    u: &Unknowns,
    x: &mut Vec<f64>,
    mat: &mut Matrix<f64>,
    caps: &mut [CapState],
    inds: &mut [IndState],
    t: f64,
    h: f64,
    opts: TranOptions,
    depth: usize,
) -> Result<(), SpiceError> {
    let saved_x = x.clone();
    let saved_caps: Vec<(f64, f64)> = caps.iter().map(|c| (c.v_prev, c.i_prev)).collect();
    let saved_inds: Vec<(f64, f64)> = inds.iter().map(|l| (l.v_prev, l.i_prev)).collect();

    match step_once(circuit, tech, u, x, mat, caps, inds, t + h, h, opts) {
        Ok(()) => Ok(()),
        Err(e) => {
            if depth >= opts.max_halvings {
                ape_probe::counter("spice.tran.step_failures", 1);
                return Err(e);
            }
            ape_probe::counter("spice.tran.halvings", 1);
            // Restore and take two half steps.
            *x = saved_x;
            for (c, (v, i)) in caps.iter_mut().zip(&saved_caps) {
                c.v_prev = *v;
                c.i_prev = *i;
            }
            for (l, (v, i)) in inds.iter_mut().zip(&saved_inds) {
                l.v_prev = *v;
                l.i_prev = *i;
            }
            let h2 = h / 2.0;
            step_adaptive(circuit, tech, u, x, mat, caps, inds, t, h2, opts, depth + 1)?;
            step_adaptive(
                circuit,
                tech,
                u,
                x,
                mat,
                caps,
                inds,
                t + h2,
                h2,
                opts,
                depth + 1,
            )
        }
    }
}

/// One trapezoidal step to absolute time `t_new` with step `h`.
#[allow(clippy::too_many_arguments)]
fn step_once(
    circuit: &Circuit,
    tech: &Technology,
    u: &Unknowns,
    x: &mut [f64],
    mat: &mut Matrix<f64>,
    caps: &mut [CapState],
    inds: &mut [IndState],
    t_new: f64,
    h: f64,
    opts: TranOptions,
) -> Result<(), SpiceError> {
    let n = u.dim();
    ape_probe::counter("spice.tran.steps", 1);
    let mut converged = false;
    for _ in 0..opts.max_newton {
        ape_probe::counter("spice.tran.nr_iters", 1);
        mat.clear();
        let mut rhs = vec![0.0; n];
        stamp_nonreactive(
            circuit,
            tech,
            u,
            x,
            mat,
            &mut rhs,
            1e-12,
            SourceValue::AtTime(t_new),
        )?;
        // Trapezoidal companions. i_new = geq·v_new − (geq·v_prev + i_prev).
        for cs in caps.iter() {
            let geq = 2.0 * cs.c / h;
            let ieq = -(geq * cs.v_prev + cs.i_prev);
            let (a, b) = (u.node_row(cs.a), u.node_row(cs.b));
            if let Some(ra) = a {
                mat.stamp(ra, ra, geq);
                rhs[ra] -= ieq;
            }
            if let Some(rb) = b {
                mat.stamp(rb, rb, geq);
                rhs[rb] += ieq;
            }
            if let (Some(ra), Some(rb)) = (a, b) {
                mat.stamp(ra, rb, -geq);
                mat.stamp(rb, ra, -geq);
            }
        }
        // Inductor branch rows: v − (2L/h)·i = −v_prev − (2L/h)·i_prev.
        for is in inds.iter() {
            let Some(k) = u.branch_row_by_name(&is.name) else {
                continue;
            };
            let (a, b) = (u.node_row(is.a), u.node_row(is.b));
            if let Some(ra) = a {
                mat.stamp(ra, k, 1.0);
                mat.stamp(k, ra, 1.0);
            }
            if let Some(rb) = b {
                mat.stamp(rb, k, -1.0);
                mat.stamp(k, rb, -1.0);
            }
            let zl = 2.0 * is.l / h;
            mat.stamp(k, k, -zl);
            rhs[k] += -is.v_prev - zl * is.i_prev;
        }
        let sol = mat
            .solve(&rhs)
            .ok_or(SpiceError::SingularMatrix { analysis: "tran" })?;
        let mut worst = 0.0f64;
        for r in 0..n {
            let delta = sol[r] - x[r];
            let lim = if r < u.n_nodes { 0.6 } else { f64::INFINITY };
            x[r] += delta.clamp(-lim, lim);
            let scale = 1e-6 + 1e-6 * sol[r].abs();
            worst = worst.max(delta.abs() / scale);
        }
        if worst < 1.0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SpiceError::NoConvergence {
            analysis: "tran",
            detail: format!("time {t_new:.3e} step {h:.3e}"),
        });
    }
    // Update companion states with converged values.
    for cs in caps.iter_mut() {
        let v_new = u.voltage(x, cs.a) - u.voltage(x, cs.b);
        let geq = 2.0 * cs.c / h;
        let i_new = geq * (v_new - cs.v_prev) - cs.i_prev;
        cs.v_prev = v_new;
        cs.i_prev = i_new;
    }
    for is in inds.iter_mut() {
        let i_new = u.branch_row_by_name(&is.name).map(|r| x[r]).unwrap_or(0.0);
        let zl = 2.0 * is.l / h;
        let v_new = zl * (i_new - is.i_prev) - is.v_prev;
        is.v_prev = v_new;
        is.i_prev = i_new;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use ape_netlist::{Circuit, SourceWaveform, Technology};

    #[test]
    fn rc_charging_curve() {
        let mut c = Circuit::new("rc");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        c.add_resistor("R1", i, o, 1e3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let tau = 1e-6;
        let tr = transient(&c, &tech, &op, TranOptions::new(tau / 100.0, 3.0 * tau)).unwrap();
        // v(τ) ≈ 1 - 1/e.
        let idx = tr
            .times
            .iter()
            .position(|&t| (t - tau).abs() < tau / 150.0)
            .unwrap();
        let v_tau = tr.voltage(idx, o);
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_tau - expect).abs() < 0.01, "v(tau) = {v_tau}");
        // Fully settled by 3τ within 6 %.
        let v_end = tr.voltage(tr.len() - 1, o);
        assert!(v_end > 0.94, "v(3tau) = {v_end}");
    }

    #[test]
    fn sin_source_passes_through() {
        let mut c = Circuit::new("sin");
        let i = c.node("in");
        c.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e3,
                delay: 0.0,
            },
        )
        .unwrap();
        c.add_resistor("R1", i, Circuit::GROUND, 1e3).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let tr = transient(&c, &tech, &op, TranOptions::new(1e-5, 1e-3)).unwrap();
        // Peak near t = 0.25 ms.
        let peak = tr
            .waveform(i)
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::MIN, f64::max);
        assert!((peak - 1.0).abs() < 0.01, "peak {peak}");
    }

    #[test]
    fn lc_oscillation_period() {
        // Series RLC ringing: check the oscillation period ≈ 2π√(LC).
        let mut c = Circuit::new("rlc");
        let i = c.node("in");
        let m = c.node("mid");
        let o = c.node("out");
        c.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        c.add_resistor("R1", i, m, 10.0).unwrap();
        c.add_inductor("L1", m, o, 1e-3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let t0 = 2.0 * std::f64::consts::PI * (1e-3f64 * 1e-9).sqrt(); // ≈6.28 µs
        let tr = transient(&c, &tech, &op, TranOptions::new(t0 / 200.0, 3.0 * t0)).unwrap();
        let wave = tr.waveform(o);
        // Find the first two maxima spacing.
        let mut peaks = Vec::new();
        for w in wave.windows(3) {
            if w[1].1 > w[0].1 && w[1].1 > w[2].1 && w[1].1 > 1.05 {
                peaks.push(w[1].0);
            }
        }
        assert!(peaks.len() >= 2, "found peaks {peaks:?}");
        let period = peaks[1] - peaks[0];
        assert!(
            (period - t0).abs() / t0 < 0.05,
            "period {period}, expect {t0}"
        );
    }

    #[test]
    fn transient_respects_initial_condition() {
        // A divider at DC stays put when nothing changes.
        let mut c = Circuit::new("static");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vdc("V1", a, Circuit::GROUND, 2.0);
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let tr = transient(&c, &tech, &op, TranOptions::new(1e-9, 1e-7)).unwrap();
        for k in 0..tr.len() {
            assert!((tr.voltage(k, b) - 1.0).abs() < 1e-4);
        }
    }
}
