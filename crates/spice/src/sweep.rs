//! DC sweep analysis: the operating point re-solved over a range of one
//! source's value, warm-starting each step from the previous solution.
//!
//! Used for transfer curves (comparator thresholds, DAC staircases,
//! amplifier large-signal characteristics).

use crate::dc::{dc_operating_point_with, DcOptions, OperatingPoint};
use crate::error::SpiceError;
use ape_netlist::{Circuit, ElementKind, NodeId, Technology};

/// Result of a DC sweep: one operating point per swept value.
#[derive(Debug, Clone)]
pub struct DcSweep {
    /// The swept source values.
    pub values: Vec<f64>,
    /// The operating point at each value.
    pub points: Vec<OperatingPoint>,
}

impl DcSweep {
    /// Voltage of `node` across the sweep.
    pub fn voltages(&self, node: NodeId) -> Vec<f64> {
        self.points.iter().map(|p| p.voltage(node)).collect()
    }

    /// The swept value where `node` first crosses `level` (linearly
    /// interpolated), if it does.
    pub fn crossing(&self, node: NodeId, level: f64) -> Option<f64> {
        let v = self.voltages(node);
        for k in 1..v.len() {
            let (a, b) = (v[k - 1], v[k]);
            if (a < level && b >= level) || (a > level && b <= level) {
                let t = (level - a) / (b - a);
                return Some(self.values[k - 1] + t * (self.values[k] - self.values[k - 1]));
            }
        }
        None
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Sweeps the DC value of the named independent source over `values`,
/// solving the operating point at each step.
///
/// # Errors
///
/// * [`SpiceError::BadCircuit`] when `source` is not an independent V/I
///   source of the circuit.
/// * DC convergence errors at any sweep point.
pub fn dc_sweep(
    circuit: &Circuit,
    tech: &Technology,
    source: &str,
    values: &[f64],
) -> Result<DcSweep, SpiceError> {
    dc_sweep_with(circuit, tech, source, values, DcOptions::default())
}

/// [`dc_sweep`] with explicit DC solver options (backend selection,
/// iteration limits, continuation knobs).
///
/// # Errors
///
/// See [`dc_sweep`].
pub fn dc_sweep_with(
    circuit: &Circuit,
    tech: &Technology,
    source: &str,
    values: &[f64],
    opts: DcOptions,
) -> Result<DcSweep, SpiceError> {
    let Some(e) = circuit.element(source) else {
        return Err(SpiceError::BadCircuit(format!(
            "no element named `{source}`"
        )));
    };
    if !matches!(
        e.kind,
        ElementKind::VoltageSource { .. } | ElementKind::CurrentSource { .. }
    ) {
        return Err(SpiceError::BadCircuit(format!(
            "`{source}` is not an independent source"
        )));
    }
    let mut work = circuit.clone();
    let mut points = Vec::with_capacity(values.len());
    for &v in values {
        set_source_dc(&mut work, source, v);
        // Warm-starting across the sweep would be faster; correctness first:
        // each point gets the full ladder of convergence aids.
        let op = dc_operating_point_with(&work, tech, opts)?;
        points.push(op);
    }
    Ok(DcSweep {
        values: values.to_vec(),
        points,
    })
}

fn set_source_dc(circuit: &mut Circuit, name: &str, value: f64) {
    if let Some(e) = circuit.element_mut(name) {
        match &mut e.kind {
            ElementKind::VoltageSource { dc, .. } | ElementKind::CurrentSource { dc, .. } => {
                *dc = value;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::{Circuit, MosGeometry, MosPolarity};

    #[test]
    fn divider_sweep_is_linear() {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vdc("V1", a, Circuit::GROUND, 0.0).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        let tech = Technology::default_1p2um();
        let values: Vec<f64> = (0..=10).map(|k| k as f64 * 0.5).collect();
        let sweep = dc_sweep(&c, &tech, "V1", &values).unwrap();
        for (k, v) in values.iter().enumerate() {
            assert!((sweep.points[k].voltage(b) - v / 2.0).abs() < 1e-6);
        }
        // Crossing of 1.25 V at input 2.5 V.
        let x = sweep.crossing(b, 1.25).unwrap();
        assert!((x - 2.5).abs() < 1e-6);
    }

    #[test]
    fn inverter_transfer_curve() {
        // NMOS common source with resistive load: output falls as input
        // rises; the sweep finds the switching threshold.
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vdc("VDD", vdd, Circuit::GROUND, 5.0).unwrap();
        c.add_vdc("VIN", g, Circuit::GROUND, 0.0).unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(10e-6, 2.4e-6),
        )
        .unwrap();
        let values: Vec<f64> = (0..=25).map(|k| k as f64 * 0.1).collect();
        let sweep = dc_sweep(&c, &tech, "VIN", &values).unwrap();
        let v = sweep.voltages(d);
        assert!(v[0] > 4.9, "off: {}", v[0]);
        assert!(*v.last().unwrap() < 1.0, "on: {}", v.last().unwrap());
        assert!(v.windows(2).all(|w| w[1] <= w[0] + 1e-9), "monotone fall");
        let vth_sw = sweep.crossing(d, 2.5).unwrap();
        assert!(vth_sw > 0.8 && vth_sw < 1.6, "switching point {vth_sw}");
    }

    #[test]
    fn rejects_non_sources() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let tech = Technology::default_1p2um();
        assert!(dc_sweep(&c, &tech, "R1", &[1.0]).is_err());
        assert!(dc_sweep(&c, &tech, "NOPE", &[1.0]).is_err());
    }
}
