//! Small-signal AC analysis.
//!
//! The circuit is linearised at a previously computed
//! [`OperatingPoint`](crate::OperatingPoint): every MOSFET contributes its
//! `gm`, `gds`, `gmb` and the Meyer/junction capacitances recorded at the
//! operating point; reactive elements stamp `jωC` / `jωL`. One complex MNA
//! solve per frequency point.

use crate::complex::Complex;
use crate::dc::OperatingPoint;
use crate::error::SpiceError;
use crate::linalg::Matrix;
use crate::linearize::stamp_small_signal;
use crate::mna::Unknowns;
use crate::sparse::{Backend, PatternBuilder, SparseFactor, SparseMatrix};
use ape_exec::Executor;
use ape_netlist::{Circuit, NodeId, Technology};

/// The result of an AC sweep: node voltage phasors per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    /// The analysed frequencies, hertz.
    pub freqs: Vec<f64>,
    points: Vec<Vec<Complex>>,
    n_nodes: usize,
}

impl AcSweep {
    /// Phasor voltage of `node` at sweep index `k`.
    ///
    /// Out-of-range indices and foreign nodes read as [`Complex::ZERO`],
    /// matching the grounded-node convention.
    pub fn voltage(&self, k: usize, node: NodeId) -> Complex {
        match node.matrix_row() {
            Some(r) if r < self.n_nodes => self
                .points
                .get(k)
                .and_then(|p| p.get(r))
                .copied()
                .unwrap_or(Complex::ZERO),
            Some(_) | None => Complex::ZERO,
        }
    }

    /// Magnitude response of `node` over the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| self.voltage(k, node).norm())
            .collect()
    }

    /// Phase response of `node` over the sweep, radians, unwrapped.
    pub fn phase_unwrapped(&self, node: NodeId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.freqs.len());
        let mut offset = 0.0;
        let mut prev = f64::NAN;
        for k in 0..self.freqs.len() {
            let mut ph = self.voltage(k, node).arg();
            if prev.is_finite() {
                while ph + offset - prev > std::f64::consts::PI {
                    offset -= 2.0 * std::f64::consts::PI;
                }
                while ph + offset - prev < -std::f64::consts::PI {
                    offset += 2.0 * std::f64::consts::PI;
                }
            }
            ph += offset;
            prev = ph;
            out.push(ph);
        }
        out
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` when the sweep contains no points.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }
}

/// Generates a logarithmic frequency grid with `points_per_decade` points
/// from `fstart` to `fstop` (both included).
///
/// # Errors
///
/// [`SpiceError::BadCircuit`] if `fstart <= 0`, `fstop < fstart`,
/// `points_per_decade == 0`, or either endpoint is non-finite.
pub fn decade_frequencies(
    fstart: f64,
    fstop: f64,
    points_per_decade: usize,
) -> Result<Vec<f64>, SpiceError> {
    if !(fstart > 0.0 && fstart.is_finite() && fstop.is_finite() && fstop >= fstart)
        || points_per_decade == 0
    {
        return Err(SpiceError::BadCircuit(format!(
            "invalid frequency grid: fstart={fstart}, fstop={fstop}, \
             points_per_decade={points_per_decade}"
        )));
    }
    // log10(fstop) - log10(fstart), not log10(fstop/fstart): the ratio of
    // two representable frequencies can overflow to infinity (1e-300 →
    // 1e300 spans 600 decades but the quotient is 1e600), which would turn
    // the point count into usize::MAX and abort on allocation.
    let decades = fstop.log10() - fstart.log10();
    let n_points = decades * points_per_decade as f64;
    const MAX_POINTS: f64 = 10_000_000.0;
    if n_points > MAX_POINTS {
        return Err(SpiceError::BadCircuit(format!(
            "frequency grid of {n_points:.0} points exceeds the {MAX_POINTS:.0}-point limit"
        )));
    }
    let n = n_points.ceil() as usize;
    let mut out: Vec<f64> = (0..=n)
        .map(|k| fstart * 10f64.powf(k as f64 / points_per_decade as f64))
        .collect();
    if let Some(last) = out.last_mut() {
        *last = fstop;
    }
    Ok(out)
}

/// Options for [`ac_sweep_with`].
#[derive(Debug, Clone, Copy)]
pub struct AcOptions {
    /// Parallel lanes for the frequency sweep: `1` = sequential (default),
    /// `0` = one per available core. Requests are clamped to
    /// `min(requested, detected_parallelism, points)` — asking for 8 lanes
    /// on a 1-core box silently ran slower before; now it just runs
    /// sequentially (and bumps the one-shot `ape.exec.clamped` counter).
    /// Results are identical for any lane count — frequency points are
    /// independent and every lane shares the same symbolic factorisation.
    pub threads: usize,
    /// Solver backend selection.
    pub backend: Backend,
}

impl Default for AcOptions {
    fn default() -> Self {
        AcOptions {
            threads: 1,
            backend: Backend::Auto,
        }
    }
}

/// Runs an AC sweep of `circuit`, linearised at `op`, over `freqs`, with
/// default [`AcOptions`].
///
/// # Errors
///
/// * [`SpiceError::SingularMatrix`] if a frequency point is singular.
/// * [`SpiceError::UnknownModel`] for MOSFETs with missing cards.
pub fn ac_sweep(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    freqs: &[f64],
) -> Result<AcSweep, SpiceError> {
    ac_sweep_with(circuit, tech, op, freqs, AcOptions::default())
}

/// [`ac_sweep`] with explicit backend/threading options, running any
/// fan-out on the shared process-wide executor ([`Executor::global`]).
///
/// The circuit is stamped once into separate real `G` (conductance) and `C`
/// (susceptance) matrices over one shared sparsity pattern; each frequency
/// point then assembles `G + jωC` elementwise and refactors numerically,
/// reusing the symbolic analysis computed at the first point. Contiguous
/// frequency chunks are submitted as executor tasks — no thread is spawned
/// per sweep, which used to dominate the cost on ≤26-unknown circuits.
///
/// # Errors
///
/// See [`ac_sweep`].
pub fn ac_sweep_with(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    freqs: &[f64],
    opts: AcOptions,
) -> Result<AcSweep, SpiceError> {
    let lanes = ape_exec::clamp_workers(opts.threads, freqs.len());
    sweep_core(circuit, tech, op, freqs, opts, Executor::global(), lanes)
}

/// [`ac_sweep_with`] on an explicit executor, taking the requested lane
/// count literally (clamped only to the point count, *not* to the
/// detected parallelism).
///
/// This is the entry point for bit-identity gates and scaling benches:
/// they construct `Executor::new(n)` pools with real worker threads and
/// must exercise genuine cross-thread chunking even on a 1-core machine,
/// where [`ac_sweep_with`] would legitimately clamp to sequential.
///
/// # Errors
///
/// See [`ac_sweep`].
pub fn ac_sweep_on(
    exec: &Executor,
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    freqs: &[f64],
    opts: AcOptions,
) -> Result<AcSweep, SpiceError> {
    let lanes = match opts.threads {
        0 => exec.parallelism(),
        t => t,
    }
    .clamp(1, freqs.len().max(1));
    sweep_core(circuit, tech, op, freqs, opts, exec, lanes)
}

fn sweep_core(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    freqs: &[f64],
    opts: AcOptions,
    exec: &Executor,
    lanes: usize,
) -> Result<AcSweep, SpiceError> {
    let _span = ape_probe::span("spice.ac");
    ape_probe::counter("spice.ac.sweeps", 1);
    ape_probe::counter("spice.ac.points", freqs.len() as u64);
    let u = Unknowns::for_circuit(circuit);
    let n = u.dim();
    if freqs.is_empty() {
        return Ok(AcSweep {
            freqs: Vec::new(),
            points: Vec::new(),
            n_nodes: u.n_nodes,
        });
    }
    let points = if opts.backend.use_sparse(n) {
        sweep_sparse(circuit, tech, op, &u, freqs, exec, lanes)?
    } else {
        sweep_dense(circuit, tech, op, &u, freqs)?
    };
    Ok(AcSweep {
        freqs: freqs.to_vec(),
        points,
        n_nodes: u.n_nodes,
    })
}

/// Dense path for small systems: stamp `G`/`C`/`b` once, assemble the
/// complex matrix per point into a reused buffer.
fn sweep_dense(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    u: &Unknowns,
    freqs: &[f64],
) -> Result<Vec<Vec<Complex>>, SpiceError> {
    let n = u.dim();
    let mut g = Matrix::<f64>::zeros(n);
    let mut c = Matrix::<f64>::zeros(n);
    let mut b = vec![0.0; n];
    stamp_small_signal(circuit, tech, op, u, &mut g, &mut c, &mut b)?;
    let mut mat = Matrix::<Complex>::zeros(n);
    let mut rhs = vec![Complex::ZERO; n];
    let mut points = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let w = 2.0 * std::f64::consts::PI * f;
        for r in 0..n {
            for cc in 0..n {
                mat[(r, cc)] = Complex::new(g[(r, cc)], w * c[(r, cc)]);
            }
        }
        for (dst, &src) in rhs.iter_mut().zip(&b) {
            *dst = Complex::real(src);
        }
        mat.solve_in_place(&mut rhs)
            .ok_or(SpiceError::SingularMatrix { analysis: "ac" })?;
        points.push(rhs[..u.n_nodes].to_vec());
    }
    Ok(points)
}

/// Sparse path: one union pattern for `G` and `C`, symbolic analysis done
/// once on the calling thread, numeric refactorisation per point —
/// optionally fanned out as contiguous executor-task chunks.
fn sweep_sparse(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    u: &Unknowns,
    freqs: &[f64],
    exec: &Executor,
    lanes: usize,
) -> Result<Vec<Vec<Complex>>, SpiceError> {
    let n = u.dim();
    let n_nodes = u.n_nodes;
    // Union pattern covering both matrices, so `G + jωC` assembles
    // elementwise over aligned value arrays.
    let mut pg = PatternBuilder::new(n);
    let mut pc = PatternBuilder::new(n);
    let mut b = vec![0.0; n];
    stamp_small_signal(circuit, tech, op, u, &mut pg, &mut pc, &mut b)?;
    pg.merge(&pc);
    let pattern = pg.build();

    let mut gsp = SparseMatrix::<f64>::new(pattern.clone());
    let mut csp = SparseMatrix::<f64>::new(pattern.clone());
    b.iter_mut().for_each(|v| *v = 0.0);
    stamp_small_signal(circuit, tech, op, u, &mut gsp, &mut csp, &mut b)?;

    // Analyze once at the first frequency; every lane reuses the
    // resulting pivot order for numeric-only refactorisation.
    let mut cmat = SparseMatrix::<Complex>::new(pattern.clone());
    let mut factor = SparseFactor::<Complex>::new();
    assemble(&mut cmat, &gsp, &csp, freqs[0]);
    factor
        .factor(&cmat)
        .ok_or(SpiceError::SingularMatrix { analysis: "ac" })?;
    let Some(sym) = factor.symbolic() else {
        return Err(SpiceError::Internal(
            "factorisation succeeded but symbolic analysis is missing",
        ));
    };

    let lanes = lanes.clamp(1, freqs.len());
    let mut points: Vec<Vec<Complex>> = vec![Vec::new(); freqs.len()];
    if lanes <= 1 {
        let mut rhs = vec![Complex::ZERO; n];
        solve_chunk(
            freqs,
            &mut points,
            &gsp,
            &csp,
            &b,
            n_nodes,
            &mut cmat,
            &mut factor,
            &mut rhs,
        )?;
        return Ok(points);
    }

    ape_probe::value("spice.ac.threads", lanes as f64);
    let chunk = freqs.len().div_ceil(lanes);
    let n_chunks = freqs.len().div_ceil(chunk);
    // One error slot per chunk; after the scope the lowest-index slot is
    // exactly the error the sequential loop would have hit first (chunks
    // are contiguous and each stops at its own first failure).
    let mut errs: Vec<Option<SpiceError>> = Vec::new();
    errs.resize_with(n_chunks, || None);
    exec.scope(|s| {
        for ((fs, out), err) in freqs
            .chunks(chunk)
            .zip(points.chunks_mut(chunk))
            .zip(errs.iter_mut())
        {
            let pattern = pattern.clone();
            let sym = sym.clone();
            let (gsp, csp, b) = (&gsp, &csp, &b);
            s.spawn(move || {
                let mut cmat = SparseMatrix::<Complex>::new(pattern);
                let mut factor = SparseFactor::<Complex>::with_symbolic(sym);
                let mut rhs = vec![Complex::ZERO; n];
                if let Err(e) = solve_chunk(
                    fs,
                    out,
                    gsp,
                    csp,
                    b,
                    n_nodes,
                    &mut cmat,
                    &mut factor,
                    &mut rhs,
                ) {
                    *err = Some(e);
                }
            });
        }
    });
    match errs.into_iter().flatten().next() {
        Some(e) => Err(e),
        None => Ok(points),
    }
}

/// Writes `G + jωC` into `cmat` (all three share one pattern).
fn assemble(
    cmat: &mut SparseMatrix<Complex>,
    g: &SparseMatrix<f64>,
    c: &SparseMatrix<f64>,
    f: f64,
) {
    let w = 2.0 * std::f64::consts::PI * f;
    let (gv, cv) = (g.values(), c.values());
    for (dst, (ga, ca)) in cmat.values_mut().iter_mut().zip(gv.iter().zip(cv)) {
        *dst = Complex::new(*ga, w * ca);
    }
}

/// Rewrites only the susceptance lane (`im = ω·C`) of an already
/// assembled `cmat`.
///
/// The real lane is pure conductance and frequency-independent, so after
/// the first point of a chunk only the imaginary halves change. Writing
/// `im` alone produces bit-identical entries (`re` keeps the exact bits
/// `assemble` stored) and halves per-point assembly traffic — SoA in
/// spirit: the complex value array is treated as separate re/im lanes.
fn assemble_im(cmat: &mut SparseMatrix<Complex>, c: &SparseMatrix<f64>, f: f64) {
    let w = 2.0 * std::f64::consts::PI * f;
    for (dst, ca) in cmat.values_mut().iter_mut().zip(c.values()) {
        dst.im = w * ca;
    }
}

/// Solves a contiguous run of frequency points into `out`, reusing the
/// caller's matrix, factor, and right-hand-side buffers.
#[allow(clippy::too_many_arguments)]
fn solve_chunk(
    freqs: &[f64],
    out: &mut [Vec<Complex>],
    g: &SparseMatrix<f64>,
    c: &SparseMatrix<f64>,
    b: &[f64],
    n_nodes: usize,
    cmat: &mut SparseMatrix<Complex>,
    factor: &mut SparseFactor<Complex>,
    rhs: &mut [Complex],
) -> Result<(), SpiceError> {
    for (k, &f) in freqs.iter().enumerate() {
        if k == 0 {
            assemble(cmat, g, c, f);
        } else {
            assemble_im(cmat, c, f);
        }
        for (dst, &src) in rhs.iter_mut().zip(b) {
            *dst = Complex::real(src);
        }
        factor
            .factor(cmat)
            .ok_or(SpiceError::SingularMatrix { analysis: "ac" })?;
        factor
            .solve(rhs)
            .ok_or(SpiceError::SingularMatrix { analysis: "ac" })?;
        out[k] = rhs[..n_nodes].to_vec();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use ape_netlist::{Circuit, SourceWaveform, Technology};

    /// The grid generator must reject empty/invalid windows, and bound the
    /// point count even when the fstop/fstart ratio overflows a double.
    #[test]
    fn decade_grid_rejects_degenerate_windows() {
        assert!(decade_frequencies(0.0, 1e6, 10).is_err());
        assert!(decade_frequencies(-1.0, 1e6, 10).is_err());
        assert!(decade_frequencies(1e6, 1e3, 10).is_err());
        assert!(decade_frequencies(1.0, f64::INFINITY, 10).is_err());
        assert!(decade_frequencies(1.0, 1e6, 0).is_err());
        // 600 decades: the naive ratio is 1e600 = inf. Must error on the
        // point limit, not allocate usize::MAX entries.
        assert!(decade_frequencies(1e-300, 1e300, 100_000).is_err());
        // ...while a legitimate extreme-but-sane window still works.
        let f = decade_frequencies(1e-300, 1e300, 2).unwrap();
        assert!(f.len() > 1000 && f.len() < 2000);
        assert_eq!(*f.last().unwrap(), 1e300);
    }

    fn rc_lowpass() -> (Circuit, NodeId) {
        let mut c = Circuit::new("rc");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("R1", i, o, 1e3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        (c, o)
    }

    #[test]
    fn rc_pole_at_expected_frequency() {
        let (c, o) = rc_lowpass();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9); // ≈159 kHz
        let sweep = ac_sweep(&c, &tech, &op, &[fc / 100.0, fc, fc * 100.0]).unwrap();
        let m = sweep.magnitude(o);
        assert!((m[0] - 1.0).abs() < 1e-3, "passband {}", m[0]);
        assert!((m[1] - 1.0 / 2f64.sqrt()).abs() < 1e-3, "-3dB {}", m[1]);
        assert!(m[2] < 0.02, "stopband {}", m[2]);
    }

    #[test]
    fn rc_phase_reaches_minus_90() {
        let (c, o) = rc_lowpass();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let freqs = decade_frequencies(1e2, 1e9, 5).unwrap();
        let sweep = ac_sweep(&c, &tech, &op, &freqs).unwrap();
        let ph = sweep.phase_unwrapped(o);
        let last = ph.last().unwrap().to_degrees();
        assert!((last + 90.0).abs() < 2.0, "phase {last}");
    }

    #[test]
    fn lc_resonance() {
        let mut c = Circuit::new("rlc");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("R1", i, o, 100.0).unwrap();
        c.add_inductor("L1", o, Circuit::GROUND, 1e-3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        // Parallel LC resonates at 1/(2π sqrt(LC)) ≈ 159 kHz where its
        // impedance peaks → output peaks.
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3_f64 * 1e-9).sqrt());
        let sweep = ac_sweep(&c, &tech, &op, &[f0 / 10.0, f0, f0 * 10.0]).unwrap();
        let m = sweep.magnitude(o);
        assert!(m[1] > m[0] && m[1] > m[2], "resonance shape {m:?}");
        assert!(m[1] > 0.99, "at resonance the divider passes ~everything");
    }

    #[test]
    fn decade_grid_endpoints() {
        let f = decade_frequencies(1.0, 1e3, 10).unwrap();
        assert_eq!(f[0], 1.0);
        assert_eq!(*f.last().unwrap(), 1e3);
        assert_eq!(f.len(), 31);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn common_source_gain_matches_gm_over_gl() {
        use ape_netlist::{MosGeometry, MosPolarity};
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("cs");
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vdc("VDD", vdd, Circuit::GROUND, 5.0).unwrap();
        c.add_vsource("VG", g, Circuit::GROUND, 1.2, 1.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(10e-6, 2.4e-6),
        )
        .unwrap();
        let op = dc_operating_point(&c, &tech).unwrap();
        let info = &op.mos["M1"];
        let expected = info.eval.gm / (1.0 / 50e3 + info.eval.gds);
        let sweep = ac_sweep(&c, &tech, &op, &[10.0]).unwrap();
        let gain = sweep.voltage(0, d).norm();
        assert!(
            (gain - expected).abs() / expected < 0.01,
            "gain {gain}, expected {expected}"
        );
    }
}
