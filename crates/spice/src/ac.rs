//! Small-signal AC analysis.
//!
//! The circuit is linearised at a previously computed
//! [`OperatingPoint`](crate::OperatingPoint): every MOSFET contributes its
//! `gm`, `gds`, `gmb` and the Meyer/junction capacitances recorded at the
//! operating point; reactive elements stamp `jωC` / `jωL`. One complex MNA
//! solve per frequency point.

use crate::complex::Complex;
use crate::dc::OperatingPoint;
use crate::error::SpiceError;
use crate::linalg::Matrix;
use crate::mna::Unknowns;
use ape_netlist::{Circuit, ElementKind, NodeId, Technology};

/// The result of an AC sweep: node voltage phasors per frequency.
#[derive(Debug, Clone)]
pub struct AcSweep {
    /// The analysed frequencies, hertz.
    pub freqs: Vec<f64>,
    points: Vec<Vec<Complex>>,
    n_nodes: usize,
}

impl AcSweep {
    /// Phasor voltage of `node` at sweep index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn voltage(&self, k: usize, node: NodeId) -> Complex {
        match node.matrix_row() {
            Some(r) if r < self.n_nodes => self.points[k][r],
            Some(_) | None => Complex::ZERO,
        }
    }

    /// Magnitude response of `node` over the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| self.voltage(k, node).norm())
            .collect()
    }

    /// Phase response of `node` over the sweep, radians, unwrapped.
    pub fn phase_unwrapped(&self, node: NodeId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.freqs.len());
        let mut offset = 0.0;
        let mut prev = f64::NAN;
        for k in 0..self.freqs.len() {
            let mut ph = self.voltage(k, node).arg();
            if prev.is_finite() {
                while ph + offset - prev > std::f64::consts::PI {
                    offset -= 2.0 * std::f64::consts::PI;
                }
                while ph + offset - prev < -std::f64::consts::PI {
                    offset += 2.0 * std::f64::consts::PI;
                }
            }
            ph += offset;
            prev = ph;
            out.push(ph);
        }
        out
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` when the sweep contains no points.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }
}

/// Generates a logarithmic frequency grid with `points_per_decade` points
/// from `fstart` to `fstop` (both included).
///
/// # Panics
///
/// Panics if `fstart <= 0`, `fstop < fstart` or `points_per_decade == 0`.
pub fn decade_frequencies(fstart: f64, fstop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(fstart > 0.0 && fstop >= fstart && points_per_decade > 0);
    let decades = (fstop / fstart).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize;
    let mut out: Vec<f64> = (0..=n)
        .map(|k| fstart * 10f64.powf(k as f64 / points_per_decade as f64))
        .collect();
    if let Some(last) = out.last_mut() {
        *last = fstop;
    }
    out
}

/// Runs an AC sweep of `circuit`, linearised at `op`, over `freqs`.
///
/// # Errors
///
/// * [`SpiceError::SingularMatrix`] if a frequency point is singular.
/// * [`SpiceError::UnknownModel`] for MOSFETs with missing cards.
pub fn ac_sweep(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    freqs: &[f64],
) -> Result<AcSweep, SpiceError> {
    let _span = ape_probe::span("spice.ac");
    ape_probe::counter("spice.ac.sweeps", 1);
    ape_probe::counter("spice.ac.points", freqs.len() as u64);
    let u = Unknowns::for_circuit(circuit);
    let n = u.dim();
    let mut points = Vec::with_capacity(freqs.len());
    let mut mat = Matrix::<Complex>::zeros(n);
    for &f in freqs {
        let w = 2.0 * std::f64::consts::PI * f;
        mat.clear();
        let mut rhs = vec![Complex::ZERO; n];
        stamp_ac(circuit, tech, op, &u, w, &mut mat, &mut rhs)?;
        let mut x = rhs;
        mat.solve_in_place(&mut x)
            .ok_or(SpiceError::SingularMatrix { analysis: "ac" })?;
        points.push(x[..u.n_nodes].to_vec());
    }
    Ok(AcSweep {
        freqs: freqs.to_vec(),
        points,
        n_nodes: u.n_nodes,
    })
}

fn stamp_ac(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    u: &Unknowns,
    w: f64,
    mat: &mut Matrix<Complex>,
    rhs: &mut [Complex],
) -> Result<(), SpiceError> {
    // Tiny shunt keeps isolated nodes solvable, as in DC.
    for r in 0..u.n_nodes {
        mat.stamp(r, r, Complex::real(1e-12));
    }
    let g2 = |mat: &mut Matrix<Complex>, a: Option<usize>, b: Option<usize>, g: Complex| {
        if let Some(ra) = a {
            mat.stamp(ra, ra, g);
        }
        if let Some(rb) = b {
            mat.stamp(rb, rb, g);
        }
        if let (Some(ra), Some(rb)) = (a, b) {
            mat.stamp(ra, rb, -g);
            mat.stamp(rb, ra, -g);
        }
    };
    let gtrans = |mat: &mut Matrix<Complex>,
                  a: Option<usize>,
                  b: Option<usize>,
                  cp: Option<usize>,
                  cn: Option<usize>,
                  g: Complex| {
        for (row, sr) in [(a, 1.0), (b, -1.0)] {
            let Some(r) = row else { continue };
            for (col, sc) in [(cp, 1.0), (cn, -1.0)] {
                let Some(c) = col else { continue };
                mat.stamp(r, c, g * (sr * sc));
            }
        }
    };
    let cap = |mat: &mut Matrix<Complex>, a: Option<usize>, b: Option<usize>, c: f64| {
        g2(mat, a, b, Complex::new(0.0, w * c));
    };

    for e in circuit.elements() {
        let a = u.node_row(e.a);
        let b = u.node_row(e.b);
        match &e.kind {
            ElementKind::Resistor { ohms } => g2(mat, a, b, Complex::real(1.0 / ohms)),
            ElementKind::Capacitor { farads } => cap(mat, a, b, *farads),
            ElementKind::Inductor { henries } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    mat.stamp(ra, k, Complex::ONE);
                    mat.stamp(k, ra, Complex::ONE);
                }
                if let Some(rb) = b {
                    mat.stamp(rb, k, -Complex::ONE);
                    mat.stamp(k, rb, -Complex::ONE);
                }
                mat.stamp(k, k, Complex::new(0.0, -w * henries));
            }
            ElementKind::VoltageSource { ac_mag, .. } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    mat.stamp(ra, k, Complex::ONE);
                    mat.stamp(k, ra, Complex::ONE);
                }
                if let Some(rb) = b {
                    mat.stamp(rb, k, -Complex::ONE);
                    mat.stamp(k, rb, -Complex::ONE);
                }
                rhs[k] += Complex::real(*ac_mag);
            }
            ElementKind::CurrentSource { ac_mag, .. } => {
                if let Some(ra) = a {
                    rhs[ra] -= Complex::real(*ac_mag);
                }
                if let Some(rb) = b {
                    rhs[rb] += Complex::real(*ac_mag);
                }
            }
            ElementKind::Vcvs { gain, cp, cn } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    mat.stamp(ra, k, Complex::ONE);
                    mat.stamp(k, ra, Complex::ONE);
                }
                if let Some(rb) = b {
                    mat.stamp(rb, k, -Complex::ONE);
                    mat.stamp(k, rb, -Complex::ONE);
                }
                if let Some(rc) = u.node_row(*cp) {
                    mat.stamp(k, rc, Complex::real(-gain));
                }
                if let Some(rc) = u.node_row(*cn) {
                    mat.stamp(k, rc, Complex::real(*gain));
                }
            }
            ElementKind::Vccs { gm, cp, cn } => {
                gtrans(
                    mat,
                    a,
                    b,
                    u.node_row(*cp),
                    u.node_row(*cn),
                    Complex::real(*gm),
                );
            }
            ElementKind::Switch {
                cp,
                cn,
                vt,
                ron,
                roff,
            } => {
                // Frozen at its DC conductance.
                let vc = op.voltage(*cp) - op.voltage(*cn);
                let s = 1.0 / (1.0 + (-(vc - vt) / 0.05).exp());
                let g = 1.0 / roff + (1.0 / ron - 1.0 / roff) * s;
                g2(mat, a, b, Complex::real(g));
            }
            ElementKind::Mosfet {
                model,
                source,
                bulk,
                ..
            } => {
                let _ = tech
                    .model(model)
                    .ok_or_else(|| SpiceError::UnknownModel(model.clone()))?;
                let info = op.mos.get(&e.name).ok_or_else(|| {
                    SpiceError::BadCircuit(format!(
                        "operating point lacks MOSFET `{}` (wrong circuit?)",
                        e.name
                    ))
                })?;
                let d = a;
                let g_row = b;
                let s_row = u.node_row(*source);
                let b_row = u.node_row(*bulk);
                g2(mat, d, s_row, Complex::real(info.eval.gds.max(0.0)));
                gtrans(mat, d, s_row, g_row, s_row, Complex::real(info.eval.gm));
                gtrans(mat, d, s_row, b_row, s_row, Complex::real(info.eval.gmb));
                cap(mat, g_row, s_row, info.caps.cgs);
                cap(mat, g_row, d, info.caps.cgd);
                cap(mat, g_row, b_row, info.caps.cgb);
                cap(mat, d, b_row, info.caps.cdb);
                cap(mat, s_row, b_row, info.caps.csb);
            }
            other => {
                return Err(SpiceError::BadCircuit(format!(
                    "unsupported element kind {other:?} in ac analysis"
                )))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use ape_netlist::{Circuit, SourceWaveform, Technology};

    fn rc_lowpass() -> (Circuit, NodeId) {
        let mut c = Circuit::new("rc");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("R1", i, o, 1e3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        (c, o)
    }

    #[test]
    fn rc_pole_at_expected_frequency() {
        let (c, o) = rc_lowpass();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9); // ≈159 kHz
        let sweep = ac_sweep(&c, &tech, &op, &[fc / 100.0, fc, fc * 100.0]).unwrap();
        let m = sweep.magnitude(o);
        assert!((m[0] - 1.0).abs() < 1e-3, "passband {}", m[0]);
        assert!((m[1] - 1.0 / 2f64.sqrt()).abs() < 1e-3, "-3dB {}", m[1]);
        assert!(m[2] < 0.02, "stopband {}", m[2]);
    }

    #[test]
    fn rc_phase_reaches_minus_90() {
        let (c, o) = rc_lowpass();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let freqs = decade_frequencies(1e2, 1e9, 5);
        let sweep = ac_sweep(&c, &tech, &op, &freqs).unwrap();
        let ph = sweep.phase_unwrapped(o);
        let last = ph.last().unwrap().to_degrees();
        assert!((last + 90.0).abs() < 2.0, "phase {last}");
    }

    #[test]
    fn lc_resonance() {
        let mut c = Circuit::new("rlc");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("R1", i, o, 100.0).unwrap();
        c.add_inductor("L1", o, Circuit::GROUND, 1e-3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        // Parallel LC resonates at 1/(2π sqrt(LC)) ≈ 159 kHz where its
        // impedance peaks → output peaks.
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3_f64 * 1e-9).sqrt());
        let sweep = ac_sweep(&c, &tech, &op, &[f0 / 10.0, f0, f0 * 10.0]).unwrap();
        let m = sweep.magnitude(o);
        assert!(m[1] > m[0] && m[1] > m[2], "resonance shape {m:?}");
        assert!(m[1] > 0.99, "at resonance the divider passes ~everything");
    }

    #[test]
    fn decade_grid_endpoints() {
        let f = decade_frequencies(1.0, 1e3, 10);
        assert_eq!(f[0], 1.0);
        assert_eq!(*f.last().unwrap(), 1e3);
        assert_eq!(f.len(), 31);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn common_source_gain_matches_gm_over_gl() {
        use ape_netlist::{MosGeometry, MosPolarity};
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("cs");
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vdc("VDD", vdd, Circuit::GROUND, 5.0);
        c.add_vsource("VG", g, Circuit::GROUND, 1.2, 1.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(10e-6, 2.4e-6),
        )
        .unwrap();
        let op = dc_operating_point(&c, &tech).unwrap();
        let info = &op.mos["M1"];
        let expected = info.eval.gm / (1.0 / 50e3 + info.eval.gds);
        let sweep = ac_sweep(&c, &tech, &op, &[10.0]).unwrap();
        let gain = sweep.voltage(0, d).norm();
        assert!(
            (gain - expected).abs() / expected < 0.01,
            "gain {gain}, expected {expected}"
        );
    }
}
