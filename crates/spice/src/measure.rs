//! Measurement extraction from analysis results.
//!
//! These functions turn raw sweeps and waveforms into the performance
//! numbers the paper's tables report: DC gain, unity-gain frequency,
//! −3 dB bandwidth, phase margin, slew rate, delays and settling times.

use crate::ac::AcSweep;
use crate::error::SpiceError;
use crate::tran::Transient;
use ape_netlist::NodeId;

/// Low-frequency gain magnitude at `node` (first sweep point).
///
/// # Errors
///
/// [`SpiceError::MeasureFailed`] on an empty sweep.
pub fn dc_gain(sweep: &AcSweep, node: NodeId) -> Result<f64, SpiceError> {
    if sweep.freqs.is_empty() {
        return Err(SpiceError::MeasureFailed(
            "dc gain of an empty sweep".into(),
        ));
    }
    Ok(sweep.voltage(0, node).norm())
}

/// Log-log interpolated frequency where the magnitude at `node` crosses 1.
///
/// # Errors
///
/// [`SpiceError::MeasureFailed`] when the response never crosses unity
/// from above within the sweep.
pub fn unity_gain_frequency(sweep: &AcSweep, node: NodeId) -> Result<f64, SpiceError> {
    crossing_frequency(sweep, node, 1.0)
}

/// Frequency where the magnitude drops to `1/√2` of its first-point value.
///
/// # Errors
///
/// [`SpiceError::MeasureFailed`] when the response never falls below the
/// −3 dB level within the sweep.
pub fn bandwidth_3db(sweep: &AcSweep, node: NodeId) -> Result<f64, SpiceError> {
    let level = dc_gain(sweep, node)? / 2f64.sqrt();
    crossing_frequency(sweep, node, level)
}

/// Frequency where the magnitude first falls below `level` (log-log
/// interpolated).
///
/// # Errors
///
/// [`SpiceError::MeasureFailed`] if the curve stays above `level`.
pub fn crossing_frequency(sweep: &AcSweep, node: NodeId, level: f64) -> Result<f64, SpiceError> {
    let mags = sweep.magnitude(node);
    if mags.is_empty() {
        return Err(SpiceError::MeasureFailed("empty sweep".into()));
    }
    if mags[0] < level {
        return Err(SpiceError::MeasureFailed(format!(
            "response starts below level {level}"
        )));
    }
    // A response sitting exactly at `level` counts as crossing at the first
    // point where it touches; without this, a perfectly flat curve at the
    // level (e.g. a unity-gain buffer probed at 1.0) would fall through to
    // the "never crosses" error on strict comparison.
    if mags[0] == level {
        return Ok(sweep.freqs[0]);
    }
    for k in 1..mags.len() {
        if mags[k] == level {
            return Ok(sweep.freqs[k]);
        }
        if mags[k] < level {
            let (f0, f1) = (sweep.freqs[k - 1], sweep.freqs[k]);
            let (m0, m1) = (mags[k - 1].max(1e-30), mags[k].max(1e-30));
            let t = (level.ln() - m0.ln()) / (m1.ln() - m0.ln());
            return Ok(f0 * (f1 / f0).powf(t.clamp(0.0, 1.0)));
        }
    }
    Err(SpiceError::MeasureFailed(format!(
        "response never crosses level {level} up to {} Hz",
        sweep.freqs.last().copied().unwrap_or(0.0)
    )))
}

/// Phase margin in degrees: `180° + ∠H(j·ω_ugf)`.
///
/// # Errors
///
/// Propagates [`unity_gain_frequency`] failures, and returns
/// [`SpiceError::MeasureFailed`] when the unity-gain frequency cannot be
/// bracketed by the sweep (it lies beyond the last point, or the sweep is
/// too short to interpolate) — previously this silently reused the last
/// phase sample.
pub fn phase_margin(sweep: &AcSweep, node: NodeId) -> Result<f64, SpiceError> {
    let fu = unity_gain_frequency(sweep, node)?;
    let ph = sweep.phase_unwrapped(node);
    if ph.is_empty() {
        return Err(SpiceError::MeasureFailed("empty sweep".into()));
    }
    if fu <= sweep.freqs[0] {
        return Ok(180.0 + ph[0].to_degrees());
    }
    // Interpolate unwrapped phase at fu.
    for k in 1..sweep.freqs.len() {
        if sweep.freqs[k] >= fu {
            let (f0, f1) = (sweep.freqs[k - 1], sweep.freqs[k]);
            let t = ((fu / f0).ln() / (f1 / f0).ln()).clamp(0.0, 1.0);
            let phase_at = ph[k - 1] + (ph[k] - ph[k - 1]) * t;
            return Ok(180.0 + phase_at.to_degrees());
        }
    }
    Err(SpiceError::MeasureFailed(format!(
        "unity-gain frequency {fu:.3e} Hz is not bracketed by the sweep          (last point {:.3e} Hz)",
        sweep.freqs.last().copied().unwrap_or(f64::NAN)
    )))
}

/// Maximum slope magnitude of the waveform at `node`, volts/second.
///
/// Returns 0 for waveforms with fewer than two samples.
pub fn slew_rate(tran: &Transient, node: NodeId) -> f64 {
    let w = tran.waveform(node);
    w.windows(2)
        .map(|p| {
            let dt = p[1].0 - p[0].0;
            if dt > 0.0 {
                ((p[1].1 - p[0].1) / dt).abs()
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

/// Slew rate measured between the 20 % and 80 % crossings of a step from
/// `v_start` to `v_end`, volts/second. Immune to the capacitive
/// feedthrough spike of the driving edge that inflates [`slew_rate`].
///
/// Returns `None` when the waveform never completes the 20–80 % traversal.
pub fn slew_rate_20_80(tran: &Transient, node: NodeId, v_start: f64, v_end: f64) -> Option<f64> {
    let rising = v_end > v_start;
    let lo = v_start + 0.2 * (v_end - v_start);
    let hi = v_start + 0.8 * (v_end - v_start);
    let t_lo = crossing_time(tran, node, lo, rising)?;
    let t_hi = crossing_time(tran, node, hi, rising)?;
    if t_hi <= t_lo {
        return None;
    }
    Some((hi - lo).abs() / (t_hi - t_lo))
}

/// First time the waveform at `node` crosses `level` in the requested
/// direction, linearly interpolated.
pub fn crossing_time(tran: &Transient, node: NodeId, level: f64, rising: bool) -> Option<f64> {
    let w = tran.waveform(node);
    for p in w.windows(2) {
        let (t0, v0) = p[0];
        let (t1, v1) = p[1];
        let hit = if rising {
            v0 < level && v1 >= level
        } else {
            v0 > level && v1 <= level
        };
        if hit {
            let t = t0 + (t1 - t0) * (level - v0) / (v1 - v0);
            return Some(t);
        }
    }
    None
}

/// Last time the waveform leaves the band `final_value ± tol·|final_value|`;
/// `None` when the waveform never settles inside the band.
pub fn settling_time(tran: &Transient, node: NodeId, final_value: f64, tol: f64) -> Option<f64> {
    let band = tol * final_value.abs().max(1e-12);
    let w = tran.waveform(node);
    let mut last_outside = None;
    let mut ever_inside = false;
    for &(t, v) in &w {
        if (v - final_value).abs() > band {
            last_outside = Some(t);
        } else {
            ever_inside = true;
        }
    }
    if !ever_inside {
        return None;
    }
    match last_outside {
        None => Some(0.0),
        Some(t) if t < w.last().map(|p| p.0).unwrap_or(0.0) => Some(t),
        Some(_) => None, // still outside at the end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{ac_sweep, decade_frequencies};
    use crate::dc::dc_operating_point;
    use crate::tran::{transient, TranOptions};
    use ape_netlist::{Circuit, SourceWaveform, Technology};

    fn rc(r: f64, c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new("rc");
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_resistor("R1", i, o, r).unwrap();
        ckt.add_capacitor("C1", o, Circuit::GROUND, c).unwrap();
        (ckt, o)
    }

    #[test]
    fn bandwidth_of_rc() {
        let (ckt, o) = rc(1e3, 1e-9);
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sweep = ac_sweep(&ckt, &tech, &op, &decade_frequencies(1e3, 1e8, 20).unwrap()).unwrap();
        let f3 = bandwidth_3db(&sweep, o).unwrap();
        let expect = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        assert!((f3 - expect).abs() / expect < 0.02, "f3 = {f3}");
    }

    #[test]
    fn ugf_requires_gain_above_one() {
        let (ckt, o) = rc(1e3, 1e-9);
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sweep = ac_sweep(&ckt, &tech, &op, &decade_frequencies(1e3, 1e4, 5).unwrap()).unwrap();
        // Unity-gain passband: the magnitude starts at 1 and the crossing is
        // at best marginal; asking for a crossing of 2 must fail cleanly.
        assert!(crossing_frequency(&sweep, o, 2.0).is_err());
    }

    #[test]
    fn amplified_rc_has_ugf_above_pole() {
        // VCVS gain 100 before the RC: UGF = 100× pole² ... in a single-pole
        // system UGF = A0 * f_pole.
        let mut ckt = Circuit::new("amprc");
        let i = ckt.node("in");
        let m = ckt.node("mid");
        let o = ckt.node("out");
        ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_vcvs("E1", m, Circuit::GROUND, i, Circuit::GROUND, 100.0)
            .unwrap();
        ckt.add_resistor("R1", m, o, 1e3).unwrap();
        ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sweep = ac_sweep(&ckt, &tech, &op, &decade_frequencies(1e3, 1e9, 20).unwrap()).unwrap();
        let fp = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let fu = unity_gain_frequency(&sweep, o).unwrap();
        assert!((fu - 100.0 * fp).abs() / (100.0 * fp) < 0.05, "fu = {fu}");
        let pm = phase_margin(&sweep, o).unwrap();
        assert!(
            (pm - 90.0).abs() < 3.0,
            "single-pole PM should be 90°, got {pm}"
        );
        assert!((dc_gain(&sweep, o).unwrap() - 100.0).abs() < 1.0);
    }

    #[test]
    fn slew_and_crossing_on_step() {
        let mut ckt = Circuit::new("step");
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 1e-6,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        ckt.add_resistor("R1", i, o, 1e3).unwrap();
        ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let tr = transient(&ckt, &tech, &op, TranOptions::new(2e-8, 8e-6)).unwrap();
        // RC slew is V/(RC) at the step: 1e6 V/s.
        let sr = slew_rate(&tr, o);
        assert!((sr - 1e6).abs() / 1e6 < 0.25, "slew {sr}");
        let t50 = crossing_time(&tr, o, 0.5, true).unwrap();
        // 50% crossing at delay + 0.693·τ.
        let expect = 1e-6 + 0.693e-6;
        assert!((t50 - expect).abs() < 0.1e-6, "t50 = {t50}");
        let ts = settling_time(&tr, o, 1.0, 0.01).unwrap();
        // 1% settling at delay + 4.6·τ.
        assert!((ts - (1e-6 + 4.6e-6)).abs() < 0.5e-6, "ts = {ts}");
    }

    #[test]
    fn dc_gain_of_empty_sweep_is_an_error() {
        let (ckt, o) = rc(1e3, 1e-9);
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sweep = ac_sweep(&ckt, &tech, &op, &[]).unwrap();
        assert!(matches!(
            dc_gain(&sweep, o),
            Err(SpiceError::MeasureFailed(_))
        ));
        assert!(matches!(
            bandwidth_3db(&sweep, o),
            Err(SpiceError::MeasureFailed(_))
        ));
    }

    #[test]
    fn flat_response_exactly_at_level_crosses_at_first_touch() {
        // A wire from source to probe: |H| = 1 at every frequency. Asking
        // for the crossing of exactly 1.0 used to fall through to "never
        // crosses"; now it reports the first point where the curve sits at
        // the level.
        let mut ckt = Circuit::new("wire");
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_resistor("R1", i, o, 1.0).unwrap();
        ckt.add_resistor("R2", o, Circuit::GROUND, 1e12).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let freqs = [1.0, 10.0, 100.0];
        let sweep = ac_sweep(&ckt, &tech, &op, &freqs).unwrap();
        let mags = sweep.magnitude(o);
        // Only exercise the exact-equality path when the divider is truly
        // flat at the probe level in floating point.
        if mags[0] == 1.0 {
            assert_eq!(crossing_frequency(&sweep, o, 1.0).unwrap(), 1.0);
        }
        // A level every sample matches exactly must cross at the first
        // sample regardless.
        assert_eq!(crossing_frequency(&sweep, o, mags[0]).unwrap(), 1.0);
    }

    #[test]
    fn phase_margin_requires_bracketed_ugf() {
        // Single-point sweep of an amplifying system: the UGF crossing
        // cannot be bracketed, so phase_margin must fail rather than
        // silently reuse the last phase sample.
        let mut ckt = Circuit::new("amp1pt");
        let i = ckt.node("in");
        let m = ckt.node("mid");
        let o = ckt.node("out");
        ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_vcvs("E1", m, Circuit::GROUND, i, Circuit::GROUND, 100.0)
            .unwrap();
        ckt.add_resistor("R1", m, o, 1e3).unwrap();
        ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        // Two points on either side of unity: UGF interpolates between
        // them, so phase_margin succeeds.
        let fp = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let bracketing = ac_sweep(&ckt, &tech, &op, &[fp, 1000.0 * fp]).unwrap();
        assert!(phase_margin(&bracketing, o).is_ok());
        // A single point above unity gain: crossing_frequency fails first,
        // and the error must propagate (not a silent last-sample fallback).
        let single = ac_sweep(&ckt, &tech, &op, &[fp]).unwrap();
        assert!(phase_margin(&single, o).is_err());
    }

    #[test]
    fn settling_never_reports_unsettled() {
        let mut ckt = Circuit::new("slow");
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        ckt.add_resistor("R1", i, o, 1e6).unwrap();
        ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-6).unwrap(); // τ = 1 s
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let tr = transient(&ckt, &tech, &op, TranOptions::new(1e-4, 1e-2)).unwrap();
        assert!(settling_time(&tr, o, 1.0, 0.01).is_none());
    }
}
