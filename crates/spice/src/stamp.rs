//! The stamping abstraction shared by every matrix backend.
//!
//! MNA assembly is expressed as a stream of `(row, col, value)` additions.
//! Abstracting the receiver lets the same element-stamping code drive three
//! very different consumers:
//!
//! * [`Matrix`] — the dense backend;
//! * [`SparseMatrix`](crate::sparse::SparseMatrix) — the sparse backend;
//! * [`PatternBuilder`](crate::sparse::PatternBuilder) — a value-blind pass
//!   that records only *where* stamps land, so the sparsity pattern can be
//!   fixed once per circuit and reused by every factorisation.

use crate::linalg::{Matrix, Scalar};

/// A receiver of MNA matrix stamps.
pub trait Stamp<T> {
    /// Adds `v` to entry `(r, c)`.
    fn stamp(&mut self, r: usize, c: usize, v: T);
}

impl<T: Scalar> Stamp<T> for Matrix<T> {
    fn stamp(&mut self, r: usize, c: usize, v: T) {
        Matrix::stamp(self, r, c, v);
    }
}

/// Two-terminal conductance stamp between optional rows `a` and `b`
/// (`None` = ground).
pub(crate) fn g2<T: Scalar, M: Stamp<T>>(m: &mut M, a: Option<usize>, b: Option<usize>, g: T) {
    if let Some(ra) = a {
        m.stamp(ra, ra, g);
    }
    if let Some(rb) = b {
        m.stamp(rb, rb, g);
    }
    if let (Some(ra), Some(rb)) = (a, b) {
        m.stamp(ra, rb, -g);
        m.stamp(rb, ra, -g);
    }
}

/// VCCS-like stamp: current `g·v(cp,cn)` flowing `a → b`.
pub(crate) fn gtrans<T: Scalar, M: Stamp<T>>(
    m: &mut M,
    a: Option<usize>,
    b: Option<usize>,
    cp: Option<usize>,
    cn: Option<usize>,
    g: T,
) {
    for (row, neg_row) in [(a, false), (b, true)] {
        let Some(r) = row else { continue };
        for (col, neg_col) in [(cp, false), (cn, true)] {
            let Some(c) = col else { continue };
            let v = if neg_row != neg_col { -g } else { g };
            m.stamp(r, c, v);
        }
    }
}
