//! The stamping abstraction shared by every matrix backend.
//!
//! MNA assembly is expressed as a stream of `(row, col, value)` additions.
//! Abstracting the receiver lets the same element-stamping code drive three
//! very different consumers:
//!
//! * [`Matrix`] — the dense backend;
//! * [`SparseMatrix`](crate::sparse::SparseMatrix) — the sparse backend;
//! * [`PatternBuilder`](crate::sparse::PatternBuilder) — a value-blind pass
//!   that records only *where* stamps land, so the sparsity pattern can be
//!   fixed once per circuit and reused by every factorisation.

use crate::linalg::{Matrix, Scalar};

/// A receiver of MNA matrix stamps.
pub trait Stamp<T> {
    /// Adds `v` to entry `(r, c)`.
    fn stamp(&mut self, r: usize, c: usize, v: T);

    /// Adds a pre-gathered run of stamps in slice order.
    ///
    /// The batched device path accumulates `(row, col, value)` triples
    /// into a contiguous scratch buffer (SoA-evaluated MOSFET lanes
    /// expand into these) and hands them over in one call. The default
    /// simply replays them through [`Stamp::stamp`] **in order**, which
    /// keeps floating-point accumulation bit-identical to the
    /// point-at-a-time path; backends may override to exploit the
    /// contiguous layout but must preserve the addition order per entry.
    fn stamp_batch(&mut self, entries: &[(usize, usize, T)])
    where
        T: Copy,
    {
        for &(r, c, v) in entries {
            self.stamp(r, c, v);
        }
    }
}

/// A [`Stamp`] sink that records triples into a reusable scratch vector
/// instead of writing a matrix.
///
/// The batched DC stamper points the shared element-stamping helpers
/// ([`g2`], [`gtrans`]) at this sink to *gather* a device's stamps, then
/// flushes the run into the real backend via [`Stamp::stamp_batch`].
/// Keeping the helpers as the single source of stamp geometry means the
/// batch path cannot drift from the scalar path.
#[derive(Debug, Default)]
pub(crate) struct BatchSink<T> {
    pub(crate) entries: Vec<(usize, usize, T)>,
}

impl<T> BatchSink<T> {
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T: Scalar> Stamp<T> for BatchSink<T> {
    fn stamp(&mut self, r: usize, c: usize, v: T) {
        self.entries.push((r, c, v));
    }
}

impl<T: Scalar> Stamp<T> for Matrix<T> {
    fn stamp(&mut self, r: usize, c: usize, v: T) {
        Matrix::stamp(self, r, c, v);
    }
}

/// Two-terminal conductance stamp between optional rows `a` and `b`
/// (`None` = ground).
pub(crate) fn g2<T: Scalar, M: Stamp<T>>(m: &mut M, a: Option<usize>, b: Option<usize>, g: T) {
    if let Some(ra) = a {
        m.stamp(ra, ra, g);
    }
    if let Some(rb) = b {
        m.stamp(rb, rb, g);
    }
    if let (Some(ra), Some(rb)) = (a, b) {
        m.stamp(ra, rb, -g);
        m.stamp(rb, ra, -g);
    }
}

/// VCCS-like stamp: current `g·v(cp,cn)` flowing `a → b`.
pub(crate) fn gtrans<T: Scalar, M: Stamp<T>>(
    m: &mut M,
    a: Option<usize>,
    b: Option<usize>,
    cp: Option<usize>,
    cn: Option<usize>,
    g: T,
) {
    for (row, neg_row) in [(a, false), (b, true)] {
        let Some(r) = row else { continue };
        for (col, neg_col) in [(cp, false), (cn, true)] {
            let Some(c) = col else { continue };
            let v = if neg_row != neg_col { -g } else { g };
            m.stamp(r, c, v);
        }
    }
}
