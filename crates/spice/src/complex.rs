//! Minimal complex arithmetic for AC analysis.
//!
//! Implemented in-repo to keep the workspace dependency-free; only the
//! operations the solver needs are provided.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use ape_spice::Complex;
/// let a = Complex::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// let b = a * Complex::I;
/// assert_eq!(b, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `sqrt(re² + im²)`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Does not panic; dividing by zero yields non-finite components, which
    /// the solver detects via [`Complex::is_finite`].
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the multiplicative inverse is the intended algorithm.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Complex) -> Complex {
        self * o.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!((a * b) / b, Complex::new(a.re, a.im));
        assert_eq!(-a + a, Complex::ZERO);
        assert_eq!(a * Complex::ONE, a);
    }

    #[test]
    fn division_accuracy() {
        let a = Complex::new(2.0, -1.0);
        let q = a / a;
        assert!((q.re - 1.0).abs() < 1e-14);
        assert!(q.im.abs() < 1e-14);
    }

    #[test]
    fn polar_quantities() {
        let a = Complex::new(0.0, 2.0);
        assert!((a.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-14);
        assert_eq!(a.norm(), 2.0);
        assert_eq!(a.conj(), Complex::new(0.0, -2.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1j");
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1j");
    }

    #[test]
    fn finite_detection() {
        assert!(Complex::ONE.is_finite());
        assert!(!(Complex::ONE / Complex::ZERO).is_finite());
    }
}
