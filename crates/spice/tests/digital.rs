// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Transient stress tests on switching CMOS circuits: the simulator must
//! handle devices sweeping through every region within one edge.

use ape_netlist::{Circuit, MosGeometry, MosPolarity, NodeId, SourceWaveform, Technology};
use ape_spice::{dc_operating_point, dc_sweep, measure, transient, TranOptions};

/// Builds a CMOS inverter; returns (circuit, in, out).
fn inverter(tech: &Technology, load_f: f64) -> (Circuit, NodeId, NodeId) {
    let mut c = Circuit::new("cmos-inv");
    let vdd = c.node("vdd");
    let vin = c.node("in");
    let out = c.node("out");
    c.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd).unwrap();
    c.add_vsource(
        "VIN",
        vin,
        Circuit::GROUND,
        0.0,
        0.0,
        SourceWaveform::Pulse {
            v1: 0.0,
            v2: tech.vdd,
            delay: 5e-9,
            rise: 0.2e-9,
            fall: 0.2e-9,
            width: 20e-9,
            period: 40e-9,
        },
    )
    .unwrap();
    c.add_mosfet(
        "MN",
        out,
        vin,
        Circuit::GROUND,
        Circuit::GROUND,
        MosPolarity::Nmos,
        "CMOSN",
        MosGeometry::new(6e-6, 1.2e-6),
    )
    .unwrap();
    c.add_mosfet(
        "MP",
        out,
        vin,
        vdd,
        vdd,
        MosPolarity::Pmos,
        "CMOSP",
        MosGeometry::new(18e-6, 1.2e-6),
    )
    .unwrap();
    c.add_capacitor("CL", out, Circuit::GROUND, load_f).unwrap();
    (c, vin, out)
}

#[test]
fn inverter_static_transfer() {
    let tech = Technology::default_1p2um();
    let (ckt, _, out) = inverter(&tech, 100e-15);
    let values: Vec<f64> = (0..=25).map(|k| k as f64 * 0.2).collect();
    let sweep = dc_sweep(&ckt, &tech, "VIN", &values).unwrap();
    let v = sweep.voltages(out);
    assert!(v[0] > 4.9, "output high at vin=0: {}", v[0]);
    assert!(
        *v.last().unwrap() < 0.1,
        "output low at vin=5: {}",
        v.last().unwrap()
    );
    // Monotone falling transfer with a sharp transition region.
    assert!(v.windows(2).all(|w| w[1] <= w[0] + 1e-6));
    let vm = sweep.crossing(out, tech.vdd / 2.0).unwrap();
    assert!(vm > 1.2 && vm < 3.2, "switching threshold {vm}");
}

#[test]
fn inverter_propagation_delay() {
    let tech = Technology::default_1p2um();
    let (ckt, vin, out) = inverter(&tech, 1e-12);
    let op = dc_operating_point(&ckt, &tech).unwrap();
    let tr = transient(&ckt, &tech, &op, TranOptions::new(0.05e-9, 40e-9)).unwrap();
    // Falling output edge after the rising input edge.
    let t_in = measure::crossing_time(&tr, vin, tech.vdd / 2.0, true).unwrap();
    let t_out = measure::crossing_time(&tr, out, tech.vdd / 2.0, false).unwrap();
    let tphl = t_out - t_in;
    assert!(tphl > 0.0, "causal");
    // 1 pF driven by a ~mA-class device: nanosecond scale.
    assert!(tphl < 5e-9, "tphl {tphl}");
    // Rising output after the falling input edge.
    let t_in2 = measure::crossing_time(&tr, vin, tech.vdd / 2.0, false).unwrap();
    let t_out2 = measure::crossing_time(&tr, out, tech.vdd / 2.0, true).unwrap();
    let tplh = t_out2 - t_in2;
    assert!(tplh > 0.0 && tplh < 5e-9, "tplh {tplh}");
    // Output swings rail to rail.
    let w = tr.waveform(out);
    let vmax = w.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    let vmin = w.iter().map(|p| p.1).fold(f64::MAX, f64::min);
    assert!(vmax > 4.8 && vmin < 0.2, "swing {vmin}..{vmax}");
}

#[test]
fn two_inverter_chain_restores_edges() {
    let tech = Technology::default_1p2um();
    let (mut ckt, _, out1) = inverter(&tech, 50e-15);
    // Second inverter driven by the first.
    let vdd = ckt.find_node("vdd").unwrap();
    let out2 = ckt.node("out2");
    ckt.add_mosfet(
        "MN2",
        out2,
        out1,
        Circuit::GROUND,
        Circuit::GROUND,
        MosPolarity::Nmos,
        "CMOSN",
        MosGeometry::new(6e-6, 1.2e-6),
    )
    .unwrap();
    ckt.add_mosfet(
        "MP2",
        out2,
        out1,
        vdd,
        vdd,
        MosPolarity::Pmos,
        "CMOSP",
        MosGeometry::new(18e-6, 1.2e-6),
    )
    .unwrap();
    ckt.add_capacitor("CL2", out2, Circuit::GROUND, 100e-15)
        .unwrap();
    let op = dc_operating_point(&ckt, &tech).unwrap();
    let tr = transient(&ckt, &tech, &op, TranOptions::new(0.05e-9, 40e-9)).unwrap();
    // out2 follows the input polarity (double inversion).
    let w = tr.waveform(out2);
    let at = |t: f64| {
        w.iter()
            .min_by(|a, b| {
                (a.0 - t)
                    .abs()
                    .partial_cmp(&(b.0 - t).abs())
                    .expect("finite")
            })
            .map(|p| p.1)
            .unwrap_or(0.0)
    };
    assert!(at(2e-9) < 0.3, "before the pulse out2 is low: {}", at(2e-9));
    assert!(
        at(15e-9) > 4.7,
        "during the pulse out2 is high: {}",
        at(15e-9)
    );
    assert!(
        at(35e-9) < 0.3,
        "after the pulse out2 is low again: {}",
        at(35e-9)
    );
}
