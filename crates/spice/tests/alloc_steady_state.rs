// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Asserts the zero-steady-state-allocation invariant of the sparse solve
//! path: once an analysis has built its pattern, factor workspaces, and
//! scratch buffers, further solves allocate nothing inside the solver.
//!
//! Measured via the [`ape_spice::alloc_events`] counter, which every sparse
//! structure bump on construction. The strategy: run the same analysis at
//! two workloads (N and ~4N solves) and require identical counter deltas —
//! any per-solve allocation would scale with the workload.
//!
//! These tests share one process-global counter, so they serialise on a
//! mutex; this file deliberately holds nothing else.

use ape_netlist::{Circuit, SourceWaveform, Technology};
use ape_spice::{
    ac_sweep_with, alloc_events, dc_operating_point, transient, AcOptions, Backend, TranOptions,
};
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// A 12-section RC ladder: 14 unknowns, sparse under `Backend::Auto`.
fn rc_ladder() -> Circuit {
    let mut c = Circuit::new("ladder");
    let mut prev = c.node("n0");
    c.add_vsource(
        "VIN",
        prev,
        Circuit::GROUND,
        1.0,
        1.0,
        SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-7,
            rise: 1e-8,
            fall: 1e-8,
            width: 5e-6,
            period: f64::INFINITY,
        },
    )
    .unwrap();
    for k in 1..=12 {
        let next = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, next, 1e3).unwrap();
        c.add_capacitor(&format!("C{k}"), next, Circuit::GROUND, 10e-12)
            .unwrap();
        prev = next;
    }
    c
}

#[test]
fn ac_sweep_solves_do_not_allocate() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let tech = Technology::default_1p2um();
    let ckt = rc_ladder();
    let op = dc_operating_point(&ckt, &tech).expect("DC");
    let opts = AcOptions {
        threads: 1,
        backend: Backend::Sparse,
    };
    let run = |points: usize| {
        let freqs: Vec<f64> = (0..points).map(|k| 1e3 * 1.1f64.powi(k as i32)).collect();
        let before = alloc_events();
        ac_sweep_with(&ckt, &tech, &op, &freqs, opts).expect("AC");
        alloc_events() - before
    };
    let small = run(10);
    let large = run(40);
    assert_eq!(
        small, large,
        "solver allocations grew with sweep length: {small} vs {large}"
    );
}

#[test]
fn transient_solves_do_not_allocate() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let tech = Technology::default_1p2um();
    let ckt = rc_ladder();
    let op = dc_operating_point(&ckt, &tech).expect("DC");
    let run = |tstop: f64| {
        let mut opts = TranOptions::new(2e-8, tstop);
        opts.backend = Backend::Sparse;
        let before = alloc_events();
        transient(&ckt, &tech, &op, opts).expect("tran");
        alloc_events() - before
    };
    let small = run(1e-6);
    let large = run(4e-6);
    assert_eq!(
        small, large,
        "solver allocations grew with simulated time: {small} vs {large}"
    );
}
