// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Differential tests: the sparse pattern-cached solve path against the
//! dense reference oracle, on raw linear systems and on full analyses of
//! representative circuits. Agreement gates at 1e-9 relative.

use ape_netlist::{Circuit, MosGeometry, MosPolarity, NodeId, SourceWaveform, Technology};
use ape_spice::linalg::Matrix;
use ape_spice::sparse::{from_dense, SparseFactor};
use ape_spice::{
    ac_sweep_with, dc_operating_point_with, transient, AcOptions, Backend, Complex, DcOptions,
    TranOptions,
};

const TOL: f64 = 1e-9;

/// Deterministic 64-bit LCG (Knuth constants) for reproducible systems.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Top 53 bits → [0, 1) → [-1, 1).
        (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

fn rel_close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= TOL * scale.max(1.0)
}

#[test]
fn random_real_systems_match_dense() {
    let mut rng = Lcg(0x5eed_0001);
    for n in [5, 9, 17, 33, 60] {
        let mut dense = Matrix::<f64>::zeros(n);
        for r in 0..n {
            for c in 0..n {
                dense.stamp(r, c, rng.next_f64());
            }
            // Diagonal dominance keeps the reference well conditioned.
            dense.stamp(r, r, n as f64);
        }
        let b: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let x_dense = dense.solve(&b).expect("dense solvable");

        let sp = from_dense(&dense);
        let mut factor = SparseFactor::new();
        factor.factor(&sp).expect("sparse solvable");
        let mut x_sparse = b.clone();
        factor.solve(&mut x_sparse).expect("sparse back-solve");

        let scale = x_dense.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (xs, xd) in x_sparse.iter().zip(&x_dense) {
            assert!(rel_close(*xs, *xd, scale), "n={n}: {xs} vs {xd}");
        }
    }
}

#[test]
fn random_complex_systems_match_dense() {
    let mut rng = Lcg(0x5eed_0002);
    for n in [6, 13, 28] {
        let mut dense = Matrix::<Complex>::zeros(n);
        for r in 0..n {
            for c in 0..n {
                dense.stamp(r, c, Complex::new(rng.next_f64(), rng.next_f64()));
            }
            dense.stamp(r, r, Complex::real(2.0 * n as f64));
        }
        let b: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let x_dense = dense.solve(&b).expect("dense solvable");

        let sp = from_dense(&dense);
        let mut factor = SparseFactor::new();
        factor.factor(&sp).expect("sparse solvable");
        let mut x_sparse = b.clone();
        factor.solve(&mut x_sparse).expect("sparse back-solve");

        let scale = x_dense.iter().fold(0.0f64, |m, v| m.max(v.norm()));
        for (xs, xd) in x_sparse.iter().zip(&x_dense) {
            assert!(
                (*xs - *xd).norm() <= TOL * scale.max(1.0),
                "n={n}: {xs:?} vs {xd:?}"
            );
        }
    }
}

/// A 12-section RC ladder driven by a pulse source: 13 nodes + 1 branch,
/// comfortably past the dense cutoff.
fn rc_ladder() -> (Circuit, NodeId) {
    let mut c = Circuit::new("ladder");
    let mut prev = c.node("n0");
    c.add_vsource(
        "VIN",
        prev,
        Circuit::GROUND,
        1.0,
        1.0,
        SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-7,
            rise: 1e-8,
            fall: 1e-8,
            width: 5e-6,
            period: f64::INFINITY,
        },
    )
    .unwrap();
    for k in 1..=12 {
        let next = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, next, 1e3).unwrap();
        c.add_capacitor(&format!("C{k}"), next, Circuit::GROUND, 10e-12)
            .unwrap();
        prev = next;
    }
    (c, prev)
}

/// Four resistor-loaded common-source stages sharing a supply, with an RLC
/// output network: MOSFETs for the nonlinear path, an inductor for a branch
/// unknown. 15 unknowns.
fn mos_bank() -> (Circuit, NodeId) {
    let mut c = Circuit::new("mos-bank");
    let vdd = c.node("vdd");
    c.add_vdc("VDD", vdd, Circuit::GROUND, 5.0).unwrap();
    let mut last_drain = vdd;
    for k in 0..4 {
        let g = c.node(&format!("g{k}"));
        let d = c.node(&format!("d{k}"));
        c.add_vsource(
            &format!("VG{k}"),
            g,
            Circuit::GROUND,
            1.1 + 0.1 * k as f64,
            if k == 0 { 1.0 } else { 0.0 },
            SourceWaveform::Dc,
        )
        .unwrap();
        c.add_resistor(&format!("RD{k}"), vdd, d, 30e3 + 5e3 * k as f64)
            .unwrap();
        c.add_mosfet(
            &format!("M{k}"),
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(10e-6, 2.4e-6),
        )
        .unwrap();
        last_drain = d;
    }
    let out = c.node("out");
    c.add_inductor("LO", last_drain, out, 1e-6).unwrap();
    c.add_capacitor("CO", out, Circuit::GROUND, 1e-12).unwrap();
    c.add_resistor("RO", out, Circuit::GROUND, 100e3).unwrap();
    (c, out)
}

#[test]
fn dc_sparse_matches_dense() {
    let tech = Technology::default_1p2um();
    for (label, (ckt, _)) in [("ladder", rc_ladder()), ("mos-bank", mos_bank())] {
        let dense = dc_operating_point_with(
            &ckt,
            &tech,
            DcOptions {
                backend: Backend::Dense,
                ..DcOptions::default()
            },
        )
        .expect("dense DC");
        let sparse = dc_operating_point_with(
            &ckt,
            &tech,
            DcOptions {
                backend: Backend::Sparse,
                ..DcOptions::default()
            },
        )
        .expect("sparse DC");
        let scale = dense.solution().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (s, d) in sparse.solution().iter().zip(dense.solution()) {
            assert!(rel_close(*s, *d, scale), "{label}: {s} vs {d}");
        }
    }
}

#[test]
fn ac_sparse_matches_dense() {
    let tech = Technology::default_1p2um();
    let freqs: Vec<f64> = (0..40).map(|k| 10f64.powf(2.0 + 0.2 * k as f64)).collect();
    for (label, (ckt, out)) in [("ladder", rc_ladder()), ("mos-bank", mos_bank())] {
        let op = dc_operating_point_with(&ckt, &tech, DcOptions::default()).expect("DC");
        let dense = ac_sweep_with(
            &ckt,
            &tech,
            &op,
            &freqs,
            AcOptions {
                backend: Backend::Dense,
                threads: 1,
            },
        )
        .expect("dense AC");
        let sparse = ac_sweep_with(
            &ckt,
            &tech,
            &op,
            &freqs,
            AcOptions {
                backend: Backend::Sparse,
                threads: 1,
            },
        )
        .expect("sparse AC");
        for (k, &f) in freqs.iter().enumerate() {
            let (vd, vs) = (dense.voltage(k, out), sparse.voltage(k, out));
            assert!(
                (vd - vs).norm() <= TOL * vd.norm().max(1.0),
                "{label} @ {f} Hz: {vd:?} vs {vs:?}"
            );
        }
    }
}

#[test]
fn parallel_ac_is_bit_identical_to_sequential() {
    let tech = Technology::default_1p2um();
    let (ckt, out) = mos_bank();
    let op = dc_operating_point_with(&ckt, &tech, DcOptions::default()).expect("DC");
    let freqs: Vec<f64> = (0..101)
        .map(|k| 10f64.powf(1.0 + 0.08 * k as f64))
        .collect();
    let seq = ac_sweep_with(
        &ckt,
        &tech,
        &op,
        &freqs,
        AcOptions {
            threads: 1,
            backend: Backend::Sparse,
        },
    )
    .expect("sequential");
    // Explicit executors with real worker threads: `ac_sweep_on` takes the
    // lane count literally, so this exercises genuine cross-thread chunking
    // even on a 1-core machine where `ac_sweep_with` would clamp to 1.
    for workers in [1usize, 2, 4, 8] {
        let exec = ape_exec::Executor::new(workers);
        let par = ape_spice::ac_sweep_on(
            &exec,
            &ckt,
            &tech,
            &op,
            &freqs,
            AcOptions {
                threads: workers.max(2),
                backend: Backend::Sparse,
            },
        )
        .expect("parallel");
        for k in 0..freqs.len() {
            let (a, b) = (seq.voltage(k, out), par.voltage(k, out));
            // Same symbolic factorisation + same arithmetic order per
            // point → bitwise equality, not just tolerance.
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "workers={workers} k={k}: {a:?} vs {b:?}"
            );
        }
    }
    // The public clamped path must agree as well, whatever it clamps to.
    for threads in [2usize, 4, 8] {
        let par = ac_sweep_with(
            &ckt,
            &tech,
            &op,
            &freqs,
            AcOptions {
                threads,
                backend: Backend::Sparse,
            },
        )
        .expect("clamped parallel");
        for k in 0..freqs.len() {
            let (a, b) = (seq.voltage(k, out), par.voltage(k, out));
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "threads={threads} k={k}: {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn tran_sparse_matches_dense() {
    let tech = Technology::default_1p2um();
    for (label, (ckt, out)) in [("ladder", rc_ladder()), ("mos-bank", mos_bank())] {
        let op = dc_operating_point_with(&ckt, &tech, DcOptions::default()).expect("DC");
        let mut dense_opts = TranOptions::new(2e-8, 2e-6);
        dense_opts.backend = Backend::Dense;
        let mut sparse_opts = dense_opts;
        sparse_opts.backend = Backend::Sparse;
        let dense = transient(&ckt, &tech, &op, dense_opts).expect("dense tran");
        let sparse = transient(&ckt, &tech, &op, sparse_opts).expect("sparse tran");
        let wd = dense.waveform(out);
        let ws = sparse.waveform(out);
        assert_eq!(wd.len(), ws.len(), "{label}: sample counts");
        let scale = wd.iter().fold(0.0f64, |m, (_, v)| m.max(v.abs()));
        for (k, ((_, d), (_, s))) in wd.iter().zip(&ws).enumerate() {
            assert!(rel_close(*s, *d, scale), "{label} sample {k}: {s} vs {d}");
        }
    }
}
