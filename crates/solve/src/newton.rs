//! Derivative-free Newton-style local polish.
//!
//! Coordinate line-search with finite-difference curvature: for each axis
//! the solver probes `±h`, estimates the first and second difference
//! quotients, and takes a damped Newton step when the curvature is
//! positive (falling back to a downhill step of size `h` otherwise). The
//! probe radius halves whenever a full sweep fails to improve, so the
//! search terminates at a coordinate-wise local minimum. No randomness —
//! a fixed start gives a fixed trajectory regardless of seed.

use crate::{BoxMap, Budget, Problem, Run, SolveObserver, SolveResult, Solver};

/// Newton-style coordinate polish behind the [`Solver`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonPolish {
    /// Initial probe radius in normalized coordinates (default `0.1`).
    pub initial_step: f64,
    /// Probe radius below which the polish declares convergence
    /// (default `1e-5`).
    pub min_step: f64,
}

impl Default for NewtonPolish {
    fn default() -> Self {
        NewtonPolish {
            initial_step: 0.1,
            min_step: 1e-5,
        }
    }
}

impl Solver for NewtonPolish {
    fn name(&self) -> &'static str {
        "newton"
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        budget: &Budget,
        observer: &mut dyn SolveObserver,
    ) -> SolveResult {
        let _span = ape_probe::span("solve.newton");
        let n = problem.dim();
        let mut run = Run::new(problem, budget, observer);
        let map = BoxMap::new(problem.ranges());
        let mut z = map.to_z(&problem.start());
        let mut f0 = match run.eval(&map.to_x(&z)) {
            Some(c) => c,
            None => return run.finish(),
        };
        if n == 0 {
            return run.finish();
        }
        let mut step = self.initial_step.clamp(1e-6, 0.45);
        'outer: while !run.poll() {
            let mut improved = false;
            for i in 0..n {
                if map.degenerate(i) {
                    continue;
                }
                if run.halted() {
                    break 'outer;
                }
                let zp_i = (z[i] + step).min(1.0);
                let zm_i = (z[i] - step).max(0.0);
                if zp_i <= zm_i {
                    continue;
                }
                let mut zp = z.clone();
                zp[i] = zp_i;
                let mut zm = z.clone();
                zm[i] = zm_i;
                let fp = match run.eval(&map.to_x(&zp)) {
                    Some(c) => c,
                    None => break 'outer,
                };
                let fm = match run.eval(&map.to_x(&zm)) {
                    Some(c) => c,
                    None => break 'outer,
                };
                let hp = zp_i - z[i];
                let hm = z[i] - zm_i;
                // Uneven-spacing difference quotients (the probes clamp at
                // the box walls, so hp and hm can differ).
                let g = (fp - fm) / (hp + hm);
                let curv = 2.0 * (hm * fp - (hp + hm) * f0 + hp * fm) / (hp * hm * (hp + hm));
                let delta = if g.is_finite() && curv.is_finite() && curv > 1e-12 {
                    (-g / curv).clamp(-0.5, 0.5)
                } else if g.is_finite() && g != 0.0 {
                    -g.signum() * step
                } else if fp < f0 {
                    hp
                } else if fm < f0 {
                    -hm
                } else {
                    continue;
                };
                let mut zc = z.clone();
                zc[i] = (z[i] + delta).clamp(0.0, 1.0);
                let fc = match run.eval(&map.to_x(&zc)) {
                    Some(c) => c,
                    None => break 'outer,
                };
                // Move to the best of the four stencil points.
                let (fbest, zbest_i) = [(f0, z[i]), (fp, zp_i), (fm, zm_i), (fc, zc[i])]
                    .into_iter()
                    .fold(
                        (f0, z[i]),
                        |acc, cand| if cand.0 < acc.0 { cand } else { acc },
                    );
                if fbest < f0 {
                    z[i] = zbest_i;
                    f0 = fbest;
                    improved = true;
                }
            }
            if !improved {
                if f0.is_infinite() && step < 0.45 {
                    // Still on a non-finite plateau and every probe landed
                    // on it too: widen the stencil to find the edge instead
                    // of shrinking into the flat.
                    step = (step * 2.0).min(0.45);
                } else {
                    step *= 0.5;
                    if step < self.min_step {
                        break;
                    }
                }
            }
        }
        run.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorRanges;

    #[test]
    fn newton_polishes_ill_conditioned_quadratic() {
        // Axis scales differ by 100x; the curvature estimate sizes the
        // per-axis steps so both converge.
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 2]).unwrap();
        let cost = |x: &[f64]| (x[0] - 1.5) * (x[0] - 1.5) + 100.0 * (x[1] + 0.5) * (x[1] + 0.5);
        let p = Problem::new(&ranges, &cost).with_start(vec![4.0, 4.0]);
        let r = NewtonPolish::default().solve(&p, &Budget::evals(2000), &mut ());
        assert!(r.best_cost < 1e-4, "cost {}", r.best_cost);
        assert!((r.best[0] - 1.5).abs() < 0.01);
        assert!((r.best[1] + 0.5).abs() < 0.01);
    }

    #[test]
    fn newton_is_deterministic_regardless_of_seed() {
        let ranges = VectorRanges::new(vec![(-2.0, 2.0); 3]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>();
        let p = Problem::new(&ranges, &cost);
        let a = NewtonPolish::default().solve(&p, &Budget::evals(400).with_seed(1), &mut ());
        let b = NewtonPolish::default().solve(&p, &Budget::evals(400).with_seed(999), &mut ());
        assert_eq!(a, b);
    }

    #[test]
    fn newton_survives_infinite_plateau_start() {
        // The whole left half is graded infinite; the polish must walk off
        // the plateau via its direct-improvement fallback.
        let ranges = VectorRanges::new(vec![(-1.0, 1.0)]).unwrap();
        let cost = |x: &[f64]| {
            if x[0] < 0.0 {
                f64::INFINITY
            } else {
                (x[0] - 0.5) * (x[0] - 0.5)
            }
        };
        let p = Problem::new(&ranges, &cost).with_start(vec![-0.9]);
        let r = NewtonPolish::default().solve(&p, &Budget::evals(500), &mut ());
        assert!(r.best_cost.is_finite(), "cost {}", r.best_cost);
        assert!(r.evals <= 500);
    }
}
