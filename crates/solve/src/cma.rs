//! CMA-ES: covariance matrix adaptation evolution strategy.
//!
//! The standard (μ/μ_w, λ) formulation (Hansen's tutorial parameters) in
//! normalized `z ∈ [0, 1]ⁿ` coordinates, with boundary repair by clamping.
//! The covariance eigendecomposition is a cyclic Jacobi solver — the
//! dimension here is the op-amp template's ~8–10 design variables, where
//! Jacobi is exact, deterministic, and dependency-free.

use crate::{
    eval_generation, normal, BoxMap, Budget, Problem, Rng64, Run, SolveObserver, SolveResult,
    Solver,
};

/// CMA-ES behind the [`Solver`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmaEs {
    /// Population size; `None` uses the standard `4 + ⌊3·ln n⌋`.
    pub lambda: Option<usize>,
    /// Initial step size in normalized coordinates (default `0.3`).
    pub sigma0: f64,
    /// Evaluate each generation as tasks on the shared executor. Results
    /// are recorded in sampling order, so this changes wall-time only,
    /// never the trajectory.
    pub parallel: bool,
}

impl Default for CmaEs {
    fn default() -> Self {
        CmaEs {
            lambda: None,
            sigma0: 0.3,
            parallel: false,
        }
    }
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Returns `(eigenvalues, v)` with eigenvectors in the *columns* of `v`.
fn eigen_sym(a: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..64 {
        let off: f64 = (0..n)
            .flat_map(|p| ((p + 1)..n).map(move |q| (p, q)))
            .map(|(p, q)| m[p][q] * m[p][q])
            .sum();
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for row in m.iter_mut() {
                    let (mkp, mkq) = (row[p], row[q]);
                    row[p] = c * mkp - s * mkq;
                    row[q] = s * mkp + c * mkq;
                }
                let (top, bot) = m.split_at_mut(q);
                for (mpk, mqk) in top[p].iter_mut().zip(bot[0].iter_mut()) {
                    let (a, b) = (*mpk, *mqk);
                    *mpk = c * a - s * b;
                    *mqk = s * a + c * b;
                }
                for row in v.iter_mut() {
                    let (vkp, vkq) = (row[p], row[q]);
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig = (0..n).map(|i| m[i][i]).collect();
    (eig, v)
}

impl Solver for CmaEs {
    fn name(&self) -> &'static str {
        "cma-es"
    }

    #[allow(clippy::needless_range_loop)]
    fn solve(
        &self,
        problem: &Problem<'_>,
        budget: &Budget,
        observer: &mut dyn SolveObserver,
    ) -> SolveResult {
        let _span = ape_probe::span("solve.cma");
        let n = problem.dim();
        let mut run = Run::new(problem, budget, observer);
        if n == 0 {
            let _ = run.eval(&problem.start());
            return run.finish();
        }
        let map = BoxMap::new(problem.ranges());
        let mut rng = Rng64::seed_from_u64(budget.seed);
        let nf = n as f64;
        let lambda = self
            .lambda
            .unwrap_or(4 + (3.0 * nf.ln()).floor().max(0.0) as usize)
            .max(4);
        let mu = lambda / 2;
        let raw_w: Vec<f64> = (0..mu)
            .map(|i| (mu as f64 + 0.5).ln() - ((i + 1) as f64).ln())
            .collect();
        let wsum: f64 = raw_w.iter().sum();
        let weights: Vec<f64> = raw_w.iter().map(|w| w / wsum).collect();
        let mueff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
        let cs = (mueff + 2.0) / (nf + mueff + 5.0);
        let ds = 1.0 + 2.0 * (((mueff - 1.0) / (nf + 1.0)).sqrt() - 1.0).max(0.0) + cs;
        let cc = (4.0 + mueff / nf) / (nf + 4.0 + 2.0 * mueff / nf);
        let c1 = 2.0 / ((nf + 1.3) * (nf + 1.3) + mueff);
        let cmu =
            (1.0 - c1).min(2.0 * (mueff - 2.0 + 1.0 / mueff) / ((nf + 2.0) * (nf + 2.0) + mueff));
        let chi_n = nf.sqrt() * (1.0 - 1.0 / (4.0 * nf) + 1.0 / (21.0 * nf * nf));

        let mut mean = map.to_z(&problem.start());
        let mut sigma = self.sigma0.clamp(1e-6, 1.0);
        let mut cov = vec![vec![0.0; n]; n];
        for i in 0..n {
            cov[i][i] = 1.0;
        }
        let mut ps = vec![0.0f64; n];
        let mut pc = vec![0.0f64; n];
        let exec = if self.parallel {
            Some(ape_exec::Executor::global())
        } else {
            None
        };

        // Seed the incumbent with the start point itself.
        let start_x = problem.start();
        let _ = run.eval(&start_x);

        let mut generation = 0usize;
        while !run.poll() {
            let (eig, b) = eigen_sym(&cov);
            let d: Vec<f64> = eig.iter().map(|&e| e.max(1e-20).sqrt()).collect();
            // Sample λ candidates: x = mean + σ·B·(d∘z), clamped into the box.
            let mut zs: Vec<Vec<f64>> = Vec::with_capacity(lambda);
            let mut xs: Vec<Vec<f64>> = Vec::with_capacity(lambda);
            for _ in 0..lambda {
                let zn: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
                let mut y = vec![0.0f64; n];
                for i in 0..n {
                    let mut acc = 0.0;
                    for j in 0..n {
                        acc += b[i][j] * d[j] * zn[j];
                    }
                    y[i] = acc;
                }
                let znew: Vec<f64> = mean
                    .iter()
                    .zip(&y)
                    .map(|(m, yi)| (m + sigma * yi).clamp(0.0, 1.0))
                    .collect();
                xs.push(map.to_x(&znew));
                zs.push(znew);
            }
            let costs = eval_generation(&mut run, &xs, exec);
            if costs.len() < mu {
                break; // budget exhausted mid-generation
            }
            let mut order: Vec<usize> = (0..costs.len()).collect();
            order.sort_by(|&a, &b| {
                costs[a]
                    .partial_cmp(&costs[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            // Recombine on the clamped z positions (boundary repair).
            let old_mean = mean.clone();
            for i in 0..n {
                mean[i] = weights.iter().zip(&order).map(|(w, &k)| w * zs[k][i]).sum();
            }
            let y_w: Vec<f64> = mean
                .iter()
                .zip(&old_mean)
                .map(|(m, o)| (m - o) / sigma)
                .collect();
            // C^(-1/2)·y_w = B·diag(1/d)·Bᵀ·y_w for the σ path.
            let mut bty = vec![0.0f64; n];
            for j in 0..n {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += b[i][j] * y_w[i];
                }
                bty[j] = acc / d[j].max(1e-20);
            }
            let mut cinv_y = vec![0.0f64; n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += b[i][j] * bty[j];
                }
                cinv_y[i] = acc;
            }
            let cs_scale = (cs * (2.0 - cs) * mueff).sqrt();
            for i in 0..n {
                ps[i] = (1.0 - cs) * ps[i] + cs_scale * cinv_y[i];
            }
            let ps_norm = ps.iter().map(|v| v * v).sum::<f64>().sqrt();
            generation += 1;
            let denom = (1.0 - (1.0 - cs).powi(2 * generation as i32)).sqrt();
            let hsig = ps_norm / denom.max(1e-12) / chi_n < 1.4 + 2.0 / (nf + 1.0);
            let cc_scale = if hsig {
                (cc * (2.0 - cc) * mueff).sqrt()
            } else {
                0.0
            };
            for i in 0..n {
                pc[i] = (1.0 - cc) * pc[i] + cc_scale * y_w[i];
            }
            // Rank-1 + rank-μ covariance update.
            let delta_hsig = if hsig { 0.0 } else { c1 * cc * (2.0 - cc) };
            for i in 0..n {
                for j in 0..n {
                    let mut rank_mu = 0.0;
                    for (w, &k) in weights.iter().zip(&order) {
                        let yi = (zs[k][i] - old_mean[i]) / sigma;
                        let yj = (zs[k][j] - old_mean[j]) / sigma;
                        rank_mu += w * yi * yj;
                    }
                    cov[i][j] = (1.0 - c1 - cmu + delta_hsig) * cov[i][j]
                        + c1 * pc[i] * pc[j]
                        + cmu * rank_mu;
                }
            }
            sigma *= ((cs / ds) * (ps_norm / chi_n - 1.0)).exp();
            if !sigma.is_finite() {
                break;
            }
            sigma = sigma.clamp(1e-12, 2.0);
            if sigma < 1e-10 {
                break; // converged to numerical rest
            }
        }
        run.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorRanges;

    #[test]
    fn eigen_sym_recovers_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (mut eig, v) = eigen_sym(&a);
        eig.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((eig[0] - 1.0).abs() < 1e-9, "{eig:?}");
        assert!((eig[1] - 3.0).abs() < 1e-9, "{eig:?}");
        // Columns are orthonormal.
        let dot = v[0][0] * v[0][1] + v[1][0] * v[1][1];
        assert!(dot.abs() < 1e-9);
    }

    #[test]
    fn cma_minimises_rosenbrock() {
        let ranges = VectorRanges::new(vec![(-2.0, 2.0); 2]).unwrap();
        let cost = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a) * (1.0 - a) + 100.0 * (b - a * a) * (b - a * a)
        };
        let p = Problem::new(&ranges, &cost);
        let r = CmaEs::default().solve(&p, &Budget::evals(6000).with_seed(11), &mut ());
        assert!(r.best_cost < 1e-3, "cost {}", r.best_cost);
        assert!((r.best[0] - 1.0).abs() < 0.1 && (r.best[1] - 1.0).abs() < 0.1);
        assert!(ranges.contains(&r.best));
    }

    #[test]
    fn cma_survives_degenerate_and_tiny_boxes() {
        // One live axis, one pinned axis.
        let ranges = VectorRanges::new(vec![(-1.0, 1.0), (3.0, 3.0)]).unwrap();
        let cost = |x: &[f64]| x[0] * x[0] + x[1];
        let p = Problem::new(&ranges, &cost);
        let r = CmaEs::default().solve(&p, &Budget::evals(500).with_seed(3), &mut ());
        assert!(r.best[0].abs() < 0.1, "best {:?}", r.best);
        assert_eq!(r.best[1], 3.0);
        assert!(r.evals <= 500);
    }
}
