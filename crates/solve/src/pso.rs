//! Particle swarm optimization with constriction-style coefficients.

use crate::BoxMap;
use crate::{eval_generation, Budget, Problem, Rng64, Run, SolveObserver, SolveResult, Solver};

/// Particle swarm behind the [`Solver`] trait, in normalized `z ∈ [0, 1]ⁿ`
/// coordinates with velocity clamping and box repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticleSwarm {
    /// Swarm size; `None` uses `max(12, 3n)`.
    pub particles: Option<usize>,
    /// Inertia weight (default `0.7213`, the constriction value).
    pub inertia: f64,
    /// Cognitive (personal-best) acceleration (default `1.1931`).
    pub cognitive: f64,
    /// Social (global-best) acceleration (default `1.1931`).
    pub social: f64,
    /// Evaluate each iteration's positions as tasks on the shared
    /// executor. Wall-time only; the trajectory is identical.
    pub parallel: bool,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            particles: None,
            inertia: 0.7213,
            cognitive: 1.1931,
            social: 1.1931,
            parallel: false,
        }
    }
}

impl Solver for ParticleSwarm {
    fn name(&self) -> &'static str {
        "pso"
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        budget: &Budget,
        observer: &mut dyn SolveObserver,
    ) -> SolveResult {
        let _span = ape_probe::span("solve.pso");
        let n = problem.dim();
        let mut run = Run::new(problem, budget, observer);
        if n == 0 {
            let _ = run.eval(&problem.start());
            return run.finish();
        }
        let map = BoxMap::new(problem.ranges());
        let mut rng = Rng64::seed_from_u64(budget.seed);
        let swarm = self.particles.unwrap_or((3 * n).max(12)).max(2);
        let exec = if self.parallel {
            Some(ape_exec::Executor::global())
        } else {
            None
        };

        // Particle 0 starts at the problem's start point; the rest scatter
        // uniformly. Velocities start small so the first iterations refine
        // rather than teleport.
        let mut pos: Vec<Vec<f64>> = (0..swarm)
            .map(|k| {
                if k == 0 {
                    map.to_z(&problem.start())
                } else {
                    (0..n).map(|_| rng.f64()).collect()
                }
            })
            .collect();
        let mut vel: Vec<Vec<f64>> = (0..swarm)
            .map(|_| (0..n).map(|_| (rng.f64() - 0.5) * 0.2).collect())
            .collect();
        let mut pbest = pos.clone();
        let mut pbest_cost = vec![f64::INFINITY; swarm];
        let mut gbest = pos[0].clone();
        let mut gbest_cost = f64::INFINITY;

        while !run.poll() {
            let xs: Vec<Vec<f64>> = pos.iter().map(|z| map.to_x(z)).collect();
            let costs = eval_generation(&mut run, &xs, exec);
            for (k, &c) in costs.iter().enumerate() {
                if c < pbest_cost[k] {
                    pbest_cost[k] = c;
                    pbest[k] = pos[k].clone();
                }
                if c < gbest_cost {
                    gbest_cost = c;
                    gbest = pos[k].clone();
                }
            }
            if costs.len() < xs.len() {
                break; // budget exhausted mid-iteration
            }
            for k in 0..swarm {
                for i in 0..n {
                    let r1 = rng.f64();
                    let r2 = rng.f64();
                    let v = self.inertia * vel[k][i]
                        + self.cognitive * r1 * (pbest[k][i] - pos[k][i])
                        + self.social * r2 * (gbest[i] - pos[k][i]);
                    vel[k][i] = v.clamp(-0.5, 0.5);
                    pos[k][i] = (pos[k][i] + vel[k][i]).clamp(0.0, 1.0);
                }
            }
        }
        run.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorRanges;

    #[test]
    fn pso_minimises_sphere() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 4]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| (v + 2.0) * (v + 2.0)).sum::<f64>();
        let p = Problem::new(&ranges, &cost);
        let r = ParticleSwarm::default().solve(&p, &Budget::evals(5000).with_seed(9), &mut ());
        assert!(r.best_cost < 1e-3, "cost {}", r.best_cost);
        assert!(ranges.contains(&r.best));
    }

    #[test]
    fn pso_handles_rosenbrock_valley() {
        let ranges = VectorRanges::new(vec![(-2.0, 2.0); 2]).unwrap();
        let cost = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a) * (1.0 - a) + 100.0 * (b - a * a) * (b - a * a)
        };
        let p = Problem::new(&ranges, &cost);
        let r = ParticleSwarm::default().solve(&p, &Budget::evals(8000).with_seed(4), &mut ());
        assert!(r.best_cost < 0.05, "cost {}", r.best_cost);
    }
}
