//! An optimizer portfolio behind a common [`Solver`] trait.
//!
//! ROADMAP item 2: the synthesis engine should not be welded to simulated
//! annealing. FUBOCO-style structure synthesis and self-calibrating sizing
//! frameworks both assume a *portfolio* substrate — several global/local
//! optimizers racing over the same APE-narrowed intervals, first to
//! satisfy wins. This crate provides that substrate, generic over any
//! scalar cost function on a box:
//!
//! * [`Problem`] — a cost closure over a [`VectorRanges`] box, plus an
//!   optional `satisfied(cost)` early-exit predicate;
//! * [`Solver`] — `solve(problem, budget, observer) -> SolveResult`,
//!   implemented by four engines: [`SaSolver`] (an adapter over the
//!   `ape-anneal` kernel), [`CmaEs`], [`ParticleSwarm`], and
//!   [`NewtonPolish`] (derivative-free coordinate line-search with
//!   finite-difference curvature);
//! * [`Portfolio`] — races solver instances as tasks on the shared
//!   [`ape_exec::Executor`]; the first member whose best cost satisfies
//!   the predicate raises a shared stop flag and the losers stop
//!   cooperatively at their next observer poll.
//!
//! Every engine is seeded-deterministic on [`Rng64`]: the same
//! [`Budget::seed`] gives bit-identical [`SolveResult`]s at any worker
//! count, because parallel population evaluation only farms out the pure
//! cost calls and records them in input order. Cancellation rides the
//! same plumbing as the rest of the workspace: observers are polled at
//! every generation/plateau boundary, and [`Portfolio::race`] members
//! additionally observe the submitting thread's
//! [`CancelToken`](ape_core::cancel::CancelToken).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cma;
mod newton;
mod portfolio;
mod pso;
mod sa;

pub use cma::CmaEs;
pub use newton::NewtonPolish;
pub use portfolio::{MemberRun, Portfolio, RaceResult, NEWTON_POLISH_BUDGET_FRAC};
pub use pso::ParticleSwarm;
pub use sa::SaSolver;

pub use ape_anneal::{Rng64, VectorRanges};

/// A box-constrained minimisation problem: a scalar cost over
/// [`VectorRanges`], with an optional early-exit predicate on the cost.
///
/// Non-finite costs are graded as `f64::INFINITY` (and counted on the
/// `solve.non_finite_cost` probe) so hostile landscapes cannot poison a
/// solver's bookkeeping.
pub struct Problem<'a> {
    cost: &'a (dyn Fn(&[f64]) -> f64 + Sync),
    ranges: &'a VectorRanges,
    satisfied: Option<&'a (dyn Fn(f64) -> bool + Sync)>,
    start: Option<Vec<f64>>,
}

impl<'a> Problem<'a> {
    /// A problem over `ranges` minimising `cost`.
    pub fn new(ranges: &'a VectorRanges, cost: &'a (dyn Fn(&[f64]) -> f64 + Sync)) -> Self {
        Problem {
            cost,
            ranges,
            satisfied: None,
            start: None,
        }
    }

    /// Adds an early-exit predicate: once a solver's best cost satisfies
    /// it, the run stops and [`SolveResult::satisfied`] is set.
    pub fn with_satisfied(mut self, pred: &'a (dyn Fn(f64) -> bool + Sync)) -> Self {
        self.satisfied = Some(pred);
        self
    }

    /// Overrides the starting state (clamped into the box); the default
    /// start is the box center.
    pub fn with_start(mut self, start: Vec<f64>) -> Self {
        self.start = Some(self.ranges.clamp(start));
        self
    }

    /// The box constraints.
    pub fn ranges(&self) -> &VectorRanges {
        self.ranges
    }

    /// Number of design variables.
    pub fn dim(&self) -> usize {
        self.ranges.len()
    }

    /// The starting state: the explicit start if one was given, otherwise
    /// the box center.
    pub fn start(&self) -> Vec<f64> {
        self.start.clone().unwrap_or_else(|| self.ranges.center())
    }

    /// Evaluates the cost at `x`, grading non-finite values as
    /// `f64::INFINITY`.
    pub fn cost(&self, x: &[f64]) -> f64 {
        sanitize_cost((self.cost)(x))
    }

    /// Evaluates the raw (unsanitised) cost at `x` — the parallel batch
    /// path computes raw costs on workers and sanitises on record.
    fn raw_cost(&self, x: &[f64]) -> f64 {
        (self.cost)(x)
    }

    /// `true` when `cost` satisfies the early-exit predicate.
    pub fn satisfied(&self, cost: f64) -> bool {
        self.satisfied.map(|p| p(cost)).unwrap_or(false)
    }
}

fn sanitize_cost(c: f64) -> f64 {
    if c.is_finite() {
        c
    } else {
        ape_probe::counter("solve.non_finite_cost", 1);
        f64::INFINITY
    }
}

/// Evaluation budget and seed for one [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Hard ceiling on cost evaluations; solvers never exceed it.
    pub max_evals: usize,
    /// RNG seed — same seed, same trajectory.
    pub seed: u64,
}

impl Budget {
    /// A budget of `max_evals` evaluations with the default seed.
    pub fn evals(max_evals: usize) -> Self {
        Budget {
            max_evals,
            seed: 0x0A9E_5EED,
        }
    }

    /// Same budget, different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Progress snapshot handed to [`SolveObserver::on_progress`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Cost evaluations spent so far.
    pub evals: usize,
    /// Best cost seen so far (`f64::INFINITY` before the first eval).
    pub best_cost: f64,
}

/// Hook polled by every solver at generation/plateau boundaries — the
/// cooperative-cancellation surface, mirroring
/// [`ape_anneal::Observer::should_stop`].
pub trait SolveObserver {
    /// Called with a progress snapshot at every generation boundary.
    fn on_progress(&mut self, _progress: &Progress) {}

    /// Polled at every generation boundary; returning `true` stops the
    /// solver early (its best state so far is still returned, with
    /// [`SolveResult::stopped`] set).
    fn should_stop(&mut self) -> bool {
        false
    }
}

/// The no-op observer.
impl SolveObserver for () {}

/// An observer that stops when the thread-current
/// [`CancelToken`](ape_core::cancel::CancelToken) fires.
#[derive(Debug, Default)]
pub struct CancelAware;

impl SolveObserver for CancelAware {
    fn should_stop(&mut self) -> bool {
        ape_core::cancel::current_cancelled()
    }
}

/// Outcome of one [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// Best state visited (always inside the box).
    pub best: Vec<f64>,
    /// Cost of the best state (`f64::INFINITY` when the budget allowed no
    /// evaluation at all).
    pub best_cost: f64,
    /// Cost evaluations performed — never exceeds [`Budget::max_evals`].
    pub evals: usize,
    /// `true` when the best cost satisfied the problem's early-exit
    /// predicate.
    pub satisfied: bool,
    /// `true` when the observer stopped the run before the budget or the
    /// predicate did.
    pub stopped: bool,
    /// `(evaluation index, best cost so far)` trace of improvements.
    pub history: Vec<(usize, f64)>,
}

/// A derivative-free optimizer over a [`Problem`].
///
/// Implementations are deterministic per [`Budget::seed`], respect
/// [`Budget::max_evals`] as a hard ceiling, poll the observer at every
/// generation boundary, and always return a state inside the box.
pub trait Solver: Send + Sync {
    /// Short stable name (bench/report key).
    fn name(&self) -> &'static str;

    /// Minimises `problem` under `budget`, polling `observer` for
    /// cooperative cancellation.
    fn solve(
        &self,
        problem: &Problem<'_>,
        budget: &Budget,
        observer: &mut dyn SolveObserver,
    ) -> SolveResult;
}

/// Shared bookkeeping for the population solvers: counts evaluations
/// against the budget, tracks the incumbent, records the improvement
/// history, and latches `satisfied`/`stopped`.
pub(crate) struct Run<'p, 'a, 'o> {
    problem: &'p Problem<'a>,
    observer: &'o mut dyn SolveObserver,
    max_evals: usize,
    best: Vec<f64>,
    best_cost: f64,
    evals: usize,
    satisfied: bool,
    stopped: bool,
    history: Vec<(usize, f64)>,
}

impl<'p, 'a, 'o> Run<'p, 'a, 'o> {
    pub(crate) fn new(
        problem: &'p Problem<'a>,
        budget: &Budget,
        observer: &'o mut dyn SolveObserver,
    ) -> Self {
        Run {
            problem,
            observer,
            max_evals: budget.max_evals,
            best: problem.start(),
            best_cost: f64::INFINITY,
            evals: 0,
            satisfied: false,
            stopped: false,
            history: Vec::new(),
        }
    }

    /// Evaluations still available.
    pub(crate) fn remaining(&self) -> usize {
        self.max_evals.saturating_sub(self.evals)
    }

    /// `true` once the run must end: budget spent, predicate satisfied,
    /// or observer stop.
    pub(crate) fn halted(&self) -> bool {
        self.evals >= self.max_evals || self.satisfied || self.stopped
    }

    /// Records a raw cost for `x`, returning the sanitised value.
    pub(crate) fn record(&mut self, x: &[f64], raw: f64) -> f64 {
        let c = sanitize_cost(raw);
        self.evals += 1;
        if c < self.best_cost {
            self.best_cost = c;
            self.best = x.to_vec();
            self.history.push((self.evals, c));
        }
        if !self.satisfied && self.problem.satisfied(self.best_cost) {
            self.satisfied = true;
        }
        c
    }

    /// Evaluates `x` if budget remains; `None` once the run has halted.
    pub(crate) fn eval(&mut self, x: &[f64]) -> Option<f64> {
        if self.halted() {
            return None;
        }
        let raw = self.problem.raw_cost(x);
        Some(self.record(x, raw))
    }

    /// Reports progress and polls the observer; returns [`Run::halted`].
    pub(crate) fn poll(&mut self) -> bool {
        self.observer.on_progress(&Progress {
            evals: self.evals,
            best_cost: self.best_cost,
        });
        if !self.stopped && self.observer.should_stop() {
            self.stopped = true;
        }
        self.halted()
    }

    pub(crate) fn finish(self) -> SolveResult {
        SolveResult {
            best: self.best,
            best_cost: self.best_cost,
            evals: self.evals,
            satisfied: self.satisfied,
            stopped: self.stopped,
            history: self.history,
        }
    }
}

/// Evaluates a generation of candidate points, truncated to the remaining
/// budget, and records the costs **in input order** — so the result (and
/// every downstream ranking) is bit-identical whether the raw costs were
/// computed sequentially or fanned out on `exec`.
///
/// The parallel path mirrors `ape_core::graph::evaluate_many`: each task
/// carries the submitting thread's cancellation token; memo attachment is
/// the cost closure's own business (the `oblx` closure re-installs its
/// shared store on whichever worker runs it).
pub(crate) fn eval_generation(
    run: &mut Run<'_, '_, '_>,
    points: &[Vec<f64>],
    exec: Option<&ape_exec::Executor>,
) -> Vec<f64> {
    let k = points.len().min(run.remaining());
    let points = &points[..k];
    match exec {
        Some(e) if k > 1 && e.workers() > 0 => {
            let problem = run.problem;
            let token = ape_core::cancel::current();
            let mut raw = vec![0.0f64; k];
            e.scope(|s| {
                for (x, slot) in points.iter().zip(raw.iter_mut()) {
                    let token = token.clone();
                    s.spawn(move || {
                        let _guard = token.map(ape_core::cancel::set_current);
                        *slot = problem.raw_cost(x);
                    });
                }
            });
            points
                .iter()
                .zip(raw)
                .map(|(x, c)| run.record(x, c))
                .collect()
        }
        // Same semantics as the parallel arm: a generation is atomic, so a
        // predicate satisfied mid-batch does not shorten it — otherwise
        // sequential and parallel runs would diverge in eval counts.
        _ => points
            .iter()
            .map(|x| {
                let raw = run.problem.raw_cost(x);
                run.record(x, raw)
            })
            .collect(),
    }
}

/// Affine map between the box and normalized coordinates `z ∈ [0, 1]ⁿ`.
/// The population solvers work in `z`-space so wildly different per-axis
/// spans (log-ohms next to log-farads) do not skew their geometry;
/// degenerate axes (`lo == hi`) pin to `z = 0`.
pub(crate) struct BoxMap {
    lo: Vec<f64>,
    span: Vec<f64>,
}

impl BoxMap {
    pub(crate) fn new(ranges: &VectorRanges) -> Self {
        let lo = ranges.lower().to_vec();
        let span = ranges
            .lower()
            .iter()
            .zip(ranges.upper())
            .map(|(l, h)| h - l)
            .collect();
        BoxMap { lo, span }
    }

    pub(crate) fn to_x(&self, z: &[f64]) -> Vec<f64> {
        z.iter()
            .zip(self.lo.iter().zip(&self.span))
            .map(|(zi, (l, s))| l + zi.clamp(0.0, 1.0) * s)
            .collect()
    }

    pub(crate) fn to_z(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lo.iter().zip(&self.span))
            .map(|(xi, (l, s))| {
                if *s > 0.0 {
                    ((xi - l) / s).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// `true` when axis `i` has zero span (nothing to move).
    pub(crate) fn degenerate(&self, i: usize) -> bool {
        self.span[i] <= 0.0
    }
}

/// One standard normal deviate (Box–Muller on the SplitMix64 stream).
pub(crate) fn normal(rng: &mut Rng64) -> f64 {
    let u1 = rng.f64().max(1e-300);
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere() -> impl Fn(&[f64]) -> f64 + Sync {
        |x: &[f64]| x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn problem_is_sync_and_sanitises() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Problem<'_>>();
        let ranges = VectorRanges::new(vec![(-1.0, 1.0)]).unwrap();
        let nan = |_: &[f64]| f64::NAN;
        let p = Problem::new(&ranges, &nan);
        assert_eq!(p.cost(&[0.0]), f64::INFINITY);
    }

    #[test]
    fn run_respects_budget_exactly() {
        let ranges = VectorRanges::new(vec![(-1.0, 1.0); 2]).unwrap();
        let cost = sphere();
        let p = Problem::new(&ranges, &cost);
        let mut obs = ();
        let mut run = Run::new(&p, &Budget::evals(3), &mut obs);
        for _ in 0..10 {
            let _ = run.eval(&[0.5, 0.5]);
        }
        let r = run.finish();
        assert_eq!(r.evals, 3);
    }

    #[test]
    fn zero_budget_returns_start_unevaluated() {
        let ranges = VectorRanges::new(vec![(2.0, 4.0)]).unwrap();
        let cost = sphere();
        let p = Problem::new(&ranges, &cost);
        let mut obs = ();
        let mut run = Run::new(&p, &Budget::evals(0), &mut obs);
        assert!(run.eval(&[3.0]).is_none());
        let r = run.finish();
        assert_eq!(r.evals, 0);
        assert_eq!(r.best, vec![3.0]);
        assert_eq!(r.best_cost, f64::INFINITY);
    }

    #[test]
    fn eval_generation_matches_sequential_on_executor() {
        let ranges = VectorRanges::new(vec![(-2.0, 2.0); 3]).unwrap();
        let cost = sphere();
        let pred = |c: f64| c < -1.0; // never fires
        let points: Vec<Vec<f64>> = (0..12)
            .map(|k| vec![k as f64 * 0.1 - 0.6, 0.3, -0.2])
            .collect();
        let run_with = |exec: Option<&ape_exec::Executor>| {
            let p = Problem::new(&ranges, &cost).with_satisfied(&pred);
            let mut obs = ();
            let mut run = Run::new(&p, &Budget::evals(100), &mut obs);
            let costs = eval_generation(&mut run, &points, exec);
            (costs, run.finish())
        };
        let exec = ape_exec::Executor::new(3);
        let (cs, rs) = run_with(None);
        let (cp, rp) = run_with(Some(&exec));
        assert_eq!(cs, cp);
        assert_eq!(rs, rp);
        assert_eq!(rs.evals, 12);
    }

    #[test]
    fn box_map_round_trips_and_pins_degenerate_axes() {
        let ranges = VectorRanges::new(vec![(0.0, 10.0), (5.0, 5.0)]).unwrap();
        let map = BoxMap::new(&ranges);
        assert!(!map.degenerate(0));
        assert!(map.degenerate(1));
        let x = map.to_x(&[0.25, 0.9]);
        assert_eq!(x, vec![2.5, 5.0]);
        assert_eq!(map.to_z(&x), vec![0.25, 0.0]);
    }
}
