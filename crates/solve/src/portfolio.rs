//! Race a portfolio of solvers; first to satisfy wins, losers cancel.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::{Budget, CmaEs, NewtonPolish, ParticleSwarm, Problem, SaSolver, SolveResult, Solver};
use crate::{Progress, SolveObserver};

/// One member's contribution to a [`RaceResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberRun {
    /// The member solver's [`Solver::name`].
    pub name: &'static str,
    /// That member's full result, including how far it got before the
    /// race was decided.
    pub result: SolveResult,
}

/// Outcome of [`Portfolio::race`].
#[derive(Debug, Clone, PartialEq)]
pub struct RaceResult {
    /// Index into `members` of the winning run.
    pub winner: usize,
    /// The winning member's result (a copy of `members[winner].result`).
    pub best: SolveResult,
    /// Every member's run, in portfolio order.
    pub members: Vec<MemberRun>,
}

impl RaceResult {
    /// Total evaluations spent across all members.
    pub fn total_evals(&self) -> usize {
        self.members.iter().map(|m| m.result.evals).sum()
    }
}

/// Observer given to each racing member: it stops when the shared race
/// flag trips (another member satisfied the problem) or when the ambient
/// [`ape_core::cancel`] token fires.
struct RaceObserver<'f> {
    stop: &'f AtomicBool,
}

impl SolveObserver for RaceObserver<'_> {
    fn on_progress(&mut self, _p: &Progress) {}

    fn should_stop(&mut self) -> bool {
        self.stop.load(Ordering::Acquire) || ape_core::cancel::current_cancelled()
    }
}

/// One portfolio member: a solver plus its share of the race budget.
struct Member {
    solver: Box<dyn Solver>,
    /// Fraction of the race's `max_evals` this member may spend, in
    /// `(0, 1]`. Local polishers converge (or stall) in far fewer
    /// evaluations than the global searchers, so giving them the full
    /// budget only wastes executor slots on a stalled walk.
    evals_frac: f64,
}

/// A set of [`Solver`]s raced concurrently on an [`ape_exec::Executor`].
///
/// Each member receives its own slice of the evaluation budget
/// (`ceil(max_evals · evals_frac)`, at least 1) and a decorrelated seed
/// (`budget.seed + i·golden`), so the race is deterministic per member:
/// a member's trajectory depends only on the problem, its budget, and
/// *when* the shared stop flag trips — never on worker scheduling of its
/// own evaluations.
pub struct Portfolio {
    members: Vec<Member>,
}

/// Budget share [`Portfolio::standard`] hands [`NewtonPolish`]: the local
/// polish either converges quickly or stalls, so it races on a quarter of
/// the evaluations the global searchers get.
pub const NEWTON_POLISH_BUDGET_FRAC: f64 = 0.25;

impl Portfolio {
    /// Builds a portfolio from explicit members, each receiving the full
    /// race budget. Empty portfolios are allowed but [`Portfolio::race`]
    /// on one returns a vacuous result.
    pub fn new(members: Vec<Box<dyn Solver>>) -> Self {
        Portfolio::weighted(members.into_iter().map(|s| (s, 1.0)).collect())
    }

    /// Builds a portfolio with an explicit budget fraction per member.
    /// Fractions are clamped to `(0, 1]`; each member's budget is
    /// `ceil(max_evals · frac)` with a floor of one evaluation.
    pub fn weighted(members: Vec<(Box<dyn Solver>, f64)>) -> Self {
        Portfolio {
            members: members
                .into_iter()
                .map(|(solver, f)| Member {
                    solver,
                    evals_frac: if f.is_finite() && f > 0.0 {
                        f.min(1.0)
                    } else {
                        1.0
                    },
                })
                .collect(),
        }
    }

    /// The standard four-member portfolio: annealing, CMA-ES and particle
    /// swarm (their generations fanned out on the executor) on the full
    /// budget, and the Newton polish as a fast local racer on
    /// [`NEWTON_POLISH_BUDGET_FRAC`] of it.
    pub fn standard() -> Self {
        Portfolio::weighted(vec![
            (Box::new(SaSolver::default()), 1.0),
            (
                Box::new(CmaEs {
                    parallel: true,
                    ..CmaEs::default()
                }),
                1.0,
            ),
            (
                Box::new(ParticleSwarm {
                    parallel: true,
                    ..ParticleSwarm::default()
                }),
                1.0,
            ),
            (Box::new(NewtonPolish::default()), NEWTON_POLISH_BUDGET_FRAC),
        ])
    }

    /// Number of member solvers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the portfolio has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Races every member on `exec`. The first member to satisfy the
    /// problem's predicate trips a shared flag that the others observe on
    /// their next [`SolveObserver::should_stop`] poll; the ambient
    /// [`ape_core::cancel`] token (captured at the call site and
    /// re-installed in each task) cancels the whole race the same way.
    ///
    /// The winner is the satisfied member with the lowest
    /// `(best_cost, index)`; if nobody satisfied, the lowest-cost member.
    pub fn race(
        &self,
        problem: &Problem<'_>,
        budget: &Budget,
        exec: &ape_exec::Executor,
    ) -> RaceResult {
        let _span = ape_probe::span("solve.portfolio");
        if self.members.is_empty() {
            return RaceResult {
                winner: 0,
                best: SolveResult {
                    best: problem.start(),
                    best_cost: f64::INFINITY,
                    evals: 0,
                    satisfied: false,
                    stopped: false,
                    history: Vec::new(),
                },
                members: Vec::new(),
            };
        }
        let stop = AtomicBool::new(false);
        let token = ape_core::cancel::current();
        let mut slots: Vec<Option<SolveResult>> = Vec::new();
        slots.resize_with(self.members.len(), || None);
        exec.scope(|s| {
            for (i, (member, slot)) in self.members.iter().zip(slots.iter_mut()).enumerate() {
                let seed = budget
                    .seed
                    .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
                let max_evals =
                    (((budget.max_evals as f64) * member.evals_frac).ceil() as usize).max(1);
                let member_budget = Budget { max_evals, seed };
                let stop = &stop;
                let token = token.clone();
                s.spawn(move || {
                    let _cancel_guard = token.map(ape_core::cancel::set_current);
                    let mut obs = RaceObserver { stop };
                    let r = member.solver.solve(problem, &member_budget, &mut obs);
                    if r.satisfied {
                        stop.store(true, Ordering::Release);
                    }
                    *slot = Some(r);
                });
            }
        });
        let members: Vec<MemberRun> = self
            .members
            .iter()
            .zip(slots)
            .map(|(m, slot)| MemberRun {
                name: m.solver.name(),
                // The scope barrier guarantees every task ran to completion.
                result: slot.unwrap_or(SolveResult {
                    best: problem.start(),
                    best_cost: f64::INFINITY,
                    evals: 0,
                    satisfied: false,
                    stopped: false,
                    history: Vec::new(),
                }),
            })
            .collect();
        let winner = members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.result.satisfied)
            .min_by(|(ai, a), (bi, b)| {
                a.result
                    .best_cost
                    .partial_cmp(&b.result.best_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ai.cmp(bi))
            })
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                members
                    .iter()
                    .enumerate()
                    .min_by(|(ai, a), (bi, b)| {
                        a.result
                            .best_cost
                            .partial_cmp(&b.result.best_cost)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(ai.cmp(bi))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            });
        let best = members[winner].result.clone();
        RaceResult {
            winner,
            best,
            members,
        }
    }
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field(
                "members",
                &self
                    .members
                    .iter()
                    .map(|m| m.solver.name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Run, VectorRanges};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn standard_portfolio_finds_the_sphere_minimum() {
        let ranges = VectorRanges::new(vec![(-3.0, 3.0); 3]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| (v - 0.7) * (v - 0.7)).sum::<f64>();
        let pred = |c: f64| c < 1e-3;
        let p = Problem::new(&ranges, &cost).with_satisfied(&pred);
        let exec = ape_exec::Executor::new(2);
        let r = Portfolio::standard().race(&p, &Budget::evals(20_000).with_seed(7), &exec);
        assert!(r.best.satisfied, "winner: {:?}", r.best);
        assert_eq!(r.members.len(), 4);
        assert_eq!(r.best, r.members[r.winner].result);
    }

    /// A solver that satisfies the problem on its very first evaluation.
    struct InstantWinner;
    impl Solver for InstantWinner {
        fn name(&self) -> &'static str {
            "instant"
        }
        fn solve(
            &self,
            problem: &Problem<'_>,
            budget: &Budget,
            observer: &mut dyn SolveObserver,
        ) -> SolveResult {
            let mut run = Run::new(problem, budget, observer);
            let _ = run.eval(&problem.start());
            run.finish()
        }
    }

    /// A solver that never improves: it just keeps polling its observer
    /// and burning evaluations until told to stop.
    struct StubbornLoser(&'static AtomicUsize);
    impl Solver for StubbornLoser {
        fn name(&self) -> &'static str {
            "stubborn"
        }
        fn solve(
            &self,
            problem: &Problem<'_>,
            budget: &Budget,
            observer: &mut dyn SolveObserver,
        ) -> SolveResult {
            let mut run = Run::new(problem, budget, observer);
            let worst = problem.ranges().upper().to_vec();
            while !run.poll() {
                if run.eval(&worst).is_none() {
                    break;
                }
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            run.finish()
        }
    }

    #[test]
    fn losers_observe_cancellation_when_the_winner_satisfies() {
        static LOSER_EVALS: AtomicUsize = AtomicUsize::new(0);
        LOSER_EVALS.store(0, Ordering::Relaxed);
        let ranges = VectorRanges::new(vec![(0.0, 10.0); 2]).unwrap();
        let cost = |x: &[f64]| x.iter().sum::<f64>();
        let pred = |c: f64| c < 11.0; // the center (5,5) satisfies instantly
        let p = Problem::new(&ranges, &cost).with_satisfied(&pred);
        // Winner first so the help-drain order reaches it at any worker
        // count; the loser's budget alone would take far longer than the
        // race actually runs.
        let portfolio = Portfolio::new(vec![
            Box::new(InstantWinner),
            Box::new(StubbornLoser(&LOSER_EVALS)),
        ]);
        let exec = ape_exec::Executor::new(2);
        let r = portfolio.race(&p, &Budget::evals(100_000_000), &exec);
        assert_eq!(r.winner, 0);
        assert!(r.best.satisfied);
        let loser = &r.members[1].result;
        assert!(loser.stopped || loser.satisfied, "loser never stopped");
        // The loser bailed long before its budget: it observed the flag.
        assert!(
            loser.evals < 100_000_000,
            "loser burned its whole budget ({})",
            loser.evals
        );
        assert_eq!(loser.evals, LOSER_EVALS.load(Ordering::Relaxed));
    }

    #[test]
    fn ambient_cancel_token_stops_the_whole_race() {
        let token = ape_core::cancel::CancelToken::new();
        token.cancel();
        let _guard = ape_core::cancel::set_current(token);
        static EVALS: AtomicUsize = AtomicUsize::new(0);
        EVALS.store(0, Ordering::Relaxed);
        let ranges = VectorRanges::new(vec![(0.0, 1.0)]).unwrap();
        let cost = |x: &[f64]| x[0];
        let p = Problem::new(&ranges, &cost);
        let portfolio = Portfolio::new(vec![Box::new(StubbornLoser(&EVALS))]);
        let exec = ape_exec::Executor::new(1);
        let r = portfolio.race(&p, &Budget::evals(1_000_000), &exec);
        assert!(r.members[0].result.stopped, "member ignored the token");
        assert!(r.members[0].result.evals < 1_000_000);
    }

    #[test]
    fn race_is_deterministic_per_member_across_worker_counts() {
        // With no satisfied predicate the stop flag never trips, so every
        // member runs its full budget — results must be bit-identical
        // whether the race runs inline (0 workers) or on 3 workers.
        let ranges = VectorRanges::new(vec![(-2.0, 2.0); 2]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let p = Problem::new(&ranges, &cost);
        let budget = Budget::evals(600).with_seed(42);
        let run = |workers: usize| {
            let exec = ape_exec::Executor::new(workers);
            Portfolio::standard().race(&p, &budget, &exec)
        };
        let a = run(0);
        let b = run(3);
        assert_eq!(a.winner, b.winner);
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.name, mb.name);
            assert_eq!(ma.result, mb.result, "member {} diverged", ma.name);
        }
    }

    #[test]
    fn newton_polish_races_on_a_quarter_budget() {
        // No satisfied predicate, so nothing trips the stop flag and each
        // member runs against its own ceiling. The polish member must be
        // capped at ceil(frac·max_evals) while the global searchers keep
        // the full allowance.
        let ranges = VectorRanges::new(vec![(-2.0, 2.0); 2]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let p = Problem::new(&ranges, &cost);
        let max_evals = 800;
        let exec = ape_exec::Executor::new(2);
        let r = Portfolio::standard().race(&p, &Budget::evals(max_evals).with_seed(11), &exec);
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let cap = ((max_evals as f64) * NEWTON_POLISH_BUDGET_FRAC).ceil() as usize;
        let polish = r
            .members
            .iter()
            .find(|m| m.name == NewtonPolish::default().name())
            .expect("standard portfolio includes the polish");
        assert!(
            polish.result.evals <= cap,
            "polish spent {} evals, cap is {cap}",
            polish.result.evals
        );
        for m in &r.members {
            assert!(m.result.evals <= max_evals, "{} over budget", m.name);
        }
    }

    #[test]
    fn weighted_budgets_keep_members_deterministic() {
        // Heterogeneous fractions must not disturb per-member
        // reproducibility: the same weighted race is bit-identical inline
        // and on 3 workers, and the winner rule is unchanged.
        let ranges = VectorRanges::new(vec![(-2.0, 2.0); 2]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>();
        let p = Problem::new(&ranges, &cost);
        let budget = Budget::evals(500).with_seed(9);
        let build = || {
            Portfolio::weighted(vec![
                (Box::new(SaSolver::default()) as Box<dyn Solver>, 1.0),
                (Box::new(NewtonPolish::default()), 0.25),
            ])
        };
        let a = {
            let exec = ape_exec::Executor::new(0);
            build().race(&p, &budget, &exec)
        };
        let b = {
            let exec = ape_exec::Executor::new(3);
            build().race(&p, &budget, &exec)
        };
        assert_eq!(a.winner, b.winner);
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.result, mb.result, "member {} diverged", ma.name);
        }
        // Winner selection still picks the lowest (best_cost, index) among
        // satisfied members — or overall when nobody satisfied.
        let expect = a
            .members
            .iter()
            .enumerate()
            .min_by(|(ai, x), (bi, y)| {
                x.result
                    .best_cost
                    .partial_cmp(&y.result.best_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ai.cmp(bi))
            })
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(a.winner, expect);
    }

    #[test]
    fn degenerate_fractions_fall_back_to_the_full_budget() {
        // Non-finite or non-positive fractions are authoring mistakes, not
        // crash vectors: they clamp to the full budget.
        let ranges = VectorRanges::new(vec![(0.0, 1.0)]).unwrap();
        let cost = |x: &[f64]| x[0];
        let p = Problem::new(&ranges, &cost);
        let exec = ape_exec::Executor::new(0);
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let portfolio = Portfolio::weighted(vec![(
                Box::new(SaSolver::default()) as Box<dyn Solver>,
                bad,
            )]);
            let r = portfolio.race(&p, &Budget::evals(40).with_seed(1), &exec);
            assert!(r.members[0].result.evals <= 40);
            assert!(r.members[0].result.evals > 10, "fraction {bad} starved");
        }
    }

    #[test]
    fn empty_portfolio_is_vacuous() {
        let ranges = VectorRanges::new(vec![(0.0, 1.0)]).unwrap();
        let cost = |x: &[f64]| x[0];
        let p = Problem::new(&ranges, &cost);
        let exec = ape_exec::Executor::new(0);
        let r = Portfolio::new(Vec::new()).race(&p, &Budget::evals(10), &exec);
        assert!(r.members.is_empty());
        assert!(!r.best.satisfied);
        assert_eq!(r.best.evals, 0);
    }
}
