//! [`Solver`] adapter over the `ape-anneal` simulated-annealing kernel.

use crate::{Budget, Problem, Progress, SolveObserver, SolveResult, Solver};
use ape_anneal::{anneal_with_observer, AnnealOptions, Observer, Schedule, TempStats};

/// Simulated annealing behind the [`Solver`] trait: one pre-evaluation of
/// the start scales the geometric schedule ([`Schedule::geometric_auto`]),
/// then the `ape-anneal` kernel runs the remaining budget with
/// temperature-scaled box moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaSolver {
    /// Moves evaluated per temperature plateau.
    pub moves_per_temp: usize,
}

impl Default for SaSolver {
    fn default() -> Self {
        SaSolver { moves_per_temp: 40 }
    }
}

/// Bridges the annealer's plateau hooks onto a [`SolveObserver`]: forwards
/// progress, polls for cooperative stop, and latches satisfaction of the
/// problem's early-exit predicate (the kernel itself only knows a scalar
/// `target_cost`).
struct Bridge<'o, 'p, 'a> {
    outer: &'o mut dyn SolveObserver,
    problem: &'p Problem<'a>,
    evals: usize,
    satisfied: bool,
    stopped: bool,
}

impl Observer for Bridge<'_, '_, '_> {
    fn on_temperature(&mut self, stats: &TempStats) {
        self.evals += stats.moves;
        self.outer.on_progress(&Progress {
            evals: self.evals,
            best_cost: stats.best_cost,
        });
        if !self.satisfied && self.problem.satisfied(stats.best_cost) {
            self.satisfied = true;
        }
    }

    fn should_stop(&mut self) -> bool {
        if !self.stopped && self.outer.should_stop() {
            self.stopped = true;
        }
        self.satisfied || self.stopped
    }
}

impl Solver for SaSolver {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        budget: &Budget,
        observer: &mut dyn SolveObserver,
    ) -> SolveResult {
        let _span = ape_probe::span("solve.sa");
        let start = problem.start();
        if budget.max_evals == 0 {
            return SolveResult {
                best: start,
                best_cost: f64::INFINITY,
                evals: 0,
                satisfied: false,
                stopped: false,
                history: Vec::new(),
            };
        }
        let initial_cost = problem.cost(&start);
        let satisfied = problem.satisfied(initial_cost);
        if satisfied || budget.max_evals == 1 || problem.dim() == 0 {
            return SolveResult {
                best: start,
                best_cost: initial_cost,
                evals: 1,
                satisfied,
                stopped: false,
                history: vec![(1, initial_cost)],
            };
        }
        let opts = AnnealOptions {
            schedule: Schedule::geometric_auto(initial_cost, self.moves_per_temp.max(1)),
            max_evals: budget.max_evals - 1,
            seed: budget.seed,
            target_cost: f64::NEG_INFINITY,
        };
        let mut bridge = Bridge {
            outer: observer,
            problem,
            evals: 1,
            satisfied: false,
            stopped: false,
        };
        let ranges = problem.ranges();
        let r = anneal_with_observer(
            start.clone(),
            |s: &Vec<f64>| problem.cost(s),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
            &mut bridge,
        );
        // Merge the schedule-scaling pre-eval back into the accounting; the
        // kernel re-evaluated the same start as its own initial state.
        let (best, best_cost) = if initial_cost <= r.best_cost {
            (start, initial_cost)
        } else {
            (r.best_state, r.best_cost)
        };
        let mut history = vec![(1usize, initial_cost)];
        history.extend(r.history.iter().map(|&(e, c)| (e + 1, c)));
        SolveResult {
            best,
            best_cost,
            evals: r.evals + 1,
            satisfied: problem.satisfied(best_cost),
            stopped: bridge.stopped,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorRanges;

    #[test]
    fn sa_minimises_sphere_within_box() {
        let ranges = VectorRanges::new(vec![(-4.0, 4.0); 3]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>();
        let p = Problem::new(&ranges, &cost);
        let r = SaSolver::default().solve(&p, &Budget::evals(8000).with_seed(5), &mut ());
        assert!(r.best_cost < 1e-2, "cost {}", r.best_cost);
        assert!(ranges.contains(&r.best));
        assert!(r.evals <= 8000);
    }

    #[test]
    fn sa_stops_when_satisfied() {
        let ranges = VectorRanges::new(vec![(-4.0, 4.0); 2]).unwrap();
        let cost = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let pred = |c: f64| c < 0.5;
        let p = Problem::new(&ranges, &cost)
            .with_satisfied(&pred)
            .with_start(vec![3.0, 3.0]);
        let r = SaSolver::default().solve(&p, &Budget::evals(50_000).with_seed(2), &mut ());
        assert!(r.satisfied);
        assert!(r.evals < 50_000, "ran the whole budget: {}", r.evals);
    }
}
