//! Farm fault injection: jobs that fail, time out, or panic on purpose,
//! asserted at several worker counts. The farm must keep all three
//! guarantees under fire: the pool stays alive, the single-flight cache
//! never serves a stale failure to a later submission, and every waiter
//! (owner or deduplicated) is woken with a result.

use ape_farm::{Farm, FarmConfig, FarmError, Request, Response};
use ape_netlist::Technology;
use std::time::Duration;

fn erroring_job(_tech: &Technology) -> Result<Response, FarmError> {
    Err(FarmError::Ape(ape_core::ApeError::Infeasible {
        component: "fault-injection",
        message: "deliberate failure".to_string(),
    }))
}

fn panicking_job(_tech: &Technology) -> Result<Response, FarmError> {
    panic!("deliberate fault-injection panic");
}

fn slow_job(_tech: &Technology) -> Result<Response, FarmError> {
    std::thread::sleep(Duration::from_millis(30));
    Ok(Response::Text("slow ok".into()))
}

fn honest_job(_tech: &Technology) -> Result<Response, FarmError> {
    Ok(Response::Text("ok".into()))
}

/// Runs the whole fault-injection suite at `workers` threads. Returns the
/// failures it found (empty = all guarantees held).
pub fn run(workers: usize) -> Vec<String> {
    let mut failures = Vec::new();
    let tech = Technology::default_1p2um();

    // 1. Erroring jobs: every waiter sees the error; the key is then
    //    reclaimable and the pool still serves honest work.
    {
        let farm = Farm::new(tech.clone(), FarmConfig::with_workers(workers));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                farm.submit(Request::Custom {
                    label: "inject-error",
                    nonce: 1,
                    run: erroring_job,
                })
            })
            .collect();
        for h in handles {
            match h.wait() {
                Err(FarmError::Ape(_)) => {}
                other => failures.push(format!(
                    "{workers}w: erroring job returned {other:?}, expected Ape error"
                )),
            }
        }
        let again = farm.submit(Request::Custom {
            label: "inject-error",
            nonce: 1,
            run: honest_job,
        });
        if again.wait().is_err() {
            failures.push(format!("{workers}w: error poisoned the cache key"));
        }
    }

    // 2. Panicking jobs: waiters get `Panicked`, workers survive, and the
    //    farm keeps executing afterwards.
    {
        let farm = Farm::new(tech.clone(), FarmConfig::with_workers(workers));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                farm.submit(Request::Custom {
                    label: "inject-panic",
                    nonce: 2,
                    run: panicking_job,
                })
            })
            .collect();
        for h in handles {
            match h.wait() {
                Err(FarmError::Panicked(m)) if !m.trim().is_empty() => {}
                other => failures.push(format!(
                    "{workers}w: panicking job returned {other:?}, expected Panicked"
                )),
            }
        }
        if farm.stats().panicked == 0 {
            failures.push(format!("{workers}w: panic not counted in stats"));
        }
        let after = farm.submit(Request::Custom {
            label: "inject-panic-recovery",
            nonce: 3,
            run: honest_job,
        });
        if after.wait().is_err() {
            failures.push(format!("{workers}w: pool dead after panics"));
        }
    }

    // 3. Timed-out jobs: an already-expired deadline cancels cleanly.
    {
        let cfg = FarmConfig {
            job_timeout: Some(Duration::from_millis(0)),
            ..FarmConfig::with_workers(workers)
        };
        let farm = Farm::new(tech.clone(), cfg);
        let h = farm.submit(Request::Custom {
            label: "inject-timeout",
            nonce: 4,
            run: slow_job,
        });
        match h.wait() {
            Err(FarmError::Cancelled) | Ok(_) => {}
            other => failures.push(format!(
                "{workers}w: timed-out job returned {other:?}, expected Cancelled"
            )),
        }
    }

    // 4. Mixed storm: interleave honest, erroring, panicking, and slow jobs
    //    under distinct keys; every single waiter must be woken.
    {
        let farm = Farm::new(tech, FarmConfig::with_workers(workers));
        let mut handles = Vec::new();
        for k in 0..24u64 {
            let run = match k % 4 {
                0 => honest_job,
                1 => erroring_job,
                2 => panicking_job,
                _ => slow_job,
            };
            handles.push(farm.submit(Request::Custom {
                label: "storm",
                nonce: 100 + k,
                run,
            }));
        }
        for (k, h) in handles.into_iter().enumerate() {
            let r = h.wait();
            let ok = match k % 4 {
                0 | 3 => r.is_ok(),
                1 => matches!(r, Err(FarmError::Ape(_))),
                _ => matches!(r, Err(FarmError::Panicked(_))),
            };
            if !ok {
                failures.push(format!("{workers}w: storm job {k} got {r:?}"));
            }
        }
        let stats = farm.stats();
        if stats.executed != 24 {
            failures.push(format!(
                "{workers}w: storm executed {} of 24 jobs",
                stats.executed
            ));
        }
    }

    failures
}
