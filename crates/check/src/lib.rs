//! `ape-check`: the panic-freedom harness for the APE estimation surface.
//!
//! The paper's premise (§5) is that an estimator inside a synthesis loop is
//! hammered with thousands of candidate points, many infeasible, and must
//! return a graded answer or a typed error — never crash. This crate
//! proves that property mechanically: a seeded SplitMix64 generator
//! ([`ape_anneal::Rng64`], no new dependencies) produces valid, boundary,
//! and hostile inputs for every public entry point, each call runs under
//! `catch_unwind`, and three assertions are checked per case:
//!
//! 1. **No panic.** Any unwind is a failure, reported with its seed.
//! 2. **Typed, non-empty errors.** Every `Err` renders a non-empty message.
//! 3. **Ok invariants.** Accepted designs/estimates have positive area and
//!    power and finite performance numbers.
//!
//! [`drive::incremental`] additionally fuzzes the estimation graph's
//! incremental path: seeded random spec deltas (valid, boundary, hostile)
//! are applied through `OpAmp::redesign` on a warm graph and the result is
//! required to match a cold from-scratch design bit for bit.
//!
//! [`drive::solver`] additionally fuzzes the `ape-solve` optimizer
//! portfolio: hostile boxes (NaN/reversed/degenerate bounds), NaN and
//! infinite cost landscapes, and tiny budgets through every solver and the
//! raced portfolio, asserting the budget ceiling, NaN-freedom of the best
//! cost, and box containment of the best state.
//!
//! [`drive::exec_order`] additionally fuzzes the shared work-stealing
//! executor: seeded batches of design requests (hostile specs included)
//! run through `OpAmp::design_many_on` at several worker counts, and
//! every slot must match the sequential path bit for bit — task ordering
//! must never be observable in results.
//!
//! [`fault::run`] additionally injects failing, panicking, and timed-out
//! jobs into an [`ape_farm::Farm`] and asserts the pool, the single-flight
//! cache, and all waiting submitters stay live.
//!
//! [`serve::run`] additionally drives seeded hostile NDJSON traffic
//! (truncated, oversized, garbage, unknown fingerprints) through a
//! resident `ape-serve` daemon state and asserts every line gets a typed
//! response and the connection never wedges.
//!
//! Run it via the `ape-check` binary: `--smoke` for the ~200-case CI gate,
//! the default for the full ≥10,000-case sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod fault;
pub mod gen;
pub mod serve;

/// Aggregate result of a fuzzing run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Cases run per entry point, in execution order.
    pub cases: Vec<(&'static str, usize)>,
    /// Failure descriptions (seed included) — empty means the run passed.
    pub failures: Vec<String>,
}

impl CheckReport {
    /// Total number of cases across all entry points.
    pub fn total_cases(&self) -> usize {
        self.cases.iter().map(|(_, n)| n).sum()
    }

    /// `true` when every case passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `total` fuzz cases (split across the entry points, the cheap ones
/// weighted heaviest) plus the farm fault-injection suite at 1 and 8
/// workers. `base_seed` makes the whole run reproducible.
pub fn run_all(base_seed: u64, total: usize) -> CheckReport {
    let mut report = CheckReport::default();
    // Weights: parsing is microseconds, synthesis is milliseconds even at
    // a 4-eval budget. The split keeps a full 10k-case run in CI budget.
    let n_parse = total * 30 / 100;
    let n_netest = total * 20 / 100;
    let n_spice = total * 15 / 100;
    let n_design = total * 8 / 100;
    let n_incr = total * 8 / 100;
    let n_exec = (total * 4 / 100).max(2);
    let n_solve = (total * 5 / 100).max(2);
    let n_calib = (total * 5 / 100).max(2);
    let n_oblx = total
        .saturating_sub(
            n_parse + n_netest + n_spice + n_design + n_incr + n_exec + n_solve + n_calib,
        )
        .max(1);

    type Driver = fn(u64) -> drive::CaseOutcome;
    let sections: [(&'static str, usize, Driver); 9] = [
        ("parse_spice", n_parse, drive::parse),
        ("estimate_netlist", n_netest, drive::netest),
        ("spice", n_spice, drive::spice),
        ("OpAmp::design", n_design, drive::design),
        ("OpAmp::redesign", n_incr, drive::incremental),
        ("exec::design_many", n_exec, drive::exec_order),
        ("solve::Solver", n_solve, drive::solver),
        ("calib::table", n_calib, drive::calibration),
        ("oblx::synthesize", n_oblx, drive::oblx),
    ];
    for (name, count, driver) in sections {
        for k in 0..count {
            // Seeds are decorrelated per entry point by hashing the index
            // with a distinct odd constant (SplitMix64 finalises anyway).
            let seed = base_seed
                .wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(name.len() as u64);
            let outcome = driver(seed);
            if let Some(f) = outcome.failure {
                report.failures.push(f);
            }
        }
        report.cases.push((name, count));
    }

    for workers in [1usize, 8] {
        let failures = fault::run(workers);
        report
            .cases
            .push((if workers == 1 { "farm@1" } else { "farm@8" }, 1));
        report.failures.extend(failures);
    }

    // The daemon's wire protocol: ~1 batch of 24 hostile lines per 100
    // fuzz cases, at least 2 so a wedge left by batch 1 is caught.
    let serve_batches = (total / 100).max(2);
    report
        .failures
        .extend(serve::run(base_seed ^ 0x5E4E, serve_batches));
    report.cases.push(("serve", serve_batches));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-tree smoke: a small fixed-seed sweep must be panic-free.
    #[test]
    fn smoke_sweep_passes() {
        let report = run_all(0xA9E5_EED0, 60);
        assert!(report.passed(), "failures:\n{}", report.failures.join("\n"));
        assert!(report.total_cases() >= 60);
    }
}
