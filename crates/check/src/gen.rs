//! Seeded generators for valid, boundary, and hostile inputs.
//!
//! Everything is a pure function of an [`Rng64`] stream, so a failing case
//! is reproduced by re-running with the same seed. Three bands per
//! generator: *valid* inputs the estimator should accept, *boundary*
//! inputs at the edge of each domain, and *hostile* inputs (NaN, ±inf,
//! zeros, wrong dimensions, garbage text) that must come back as typed
//! errors — never as a panic.

use ape_anneal::Rng64;
use ape_core::basic::MirrorTopology;
use ape_core::opamp::{OpAmpSpec, OpAmpTopology, SpecDelta};
use ape_netlist::{Circuit, MosGeometry, MosPolarity, SourceWaveform, Technology};

/// A value drawn from a band that mixes sane magnitudes with poison.
pub fn hostile_f64(rng: &mut Rng64) -> f64 {
    match rng.range_usize(10) {
        0 => 0.0,
        1 => -1.0,
        2 => f64::NAN,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => 1e-300,
        6 => 1e300,
        7 => -rng.f64() * 1e6,
        _ => rng.range_f64(1e-15, 1e6),
    }
}

/// A plausible positive value with occasional boundary magnitudes.
pub fn plausible_f64(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    match rng.range_usize(8) {
        0 => lo,
        1 => hi,
        _ => rng.range_f64(lo, hi),
    }
}

/// Technology variants: the shipped 1.2 µm process, mutated copies, and a
/// hostile cardless process that must surface `MissingModel`-class errors.
pub fn technology(rng: &mut Rng64) -> Technology {
    match rng.range_usize(6) {
        0 => Technology::new("empty", 5.0, 0.0, 1.2e-6, 1.8e-6),
        1 => {
            let mut t = Technology::default_1p2um();
            t.vdd = hostile_f64(rng);
            t
        }
        2 => {
            let mut t = Technology::default_1p2um();
            t.lmin = plausible_f64(rng, 1e-9, 1e-5);
            t.wmin = plausible_f64(rng, 1e-9, 1e-5);
            t
        }
        _ => Technology::default_1p2um(),
    }
}

/// An op-amp spec whose every field may be poisoned.
pub fn opamp_spec(rng: &mut Rng64) -> OpAmpSpec {
    let hostile = rng.range_usize(3) == 0;
    fn field(rng: &mut Rng64, hostile: bool, lo: f64, hi: f64) -> f64 {
        if hostile && rng.range_usize(3) == 0 {
            hostile_f64(rng)
        } else {
            plausible_f64(rng, lo, hi)
        }
    }
    OpAmpSpec {
        gain: field(rng, hostile, 1.5, 5e4),
        ugf_hz: field(rng, hostile, 1e3, 5e8),
        area_max_m2: field(rng, hostile, 1e-12, 1e-6),
        ibias: field(rng, hostile, 1e-7, 1e-3),
        zout_ohm: if rng.range_usize(2) == 0 {
            Some(field(rng, hostile, 1.0, 1e6))
        } else {
            None
        },
        cl: field(rng, hostile, 1e-14, 1e-9),
    }
}

/// A specification delta for incremental re-estimation: every field is
/// independently absent, plausible, boundary, or hostile, so the fuzzer
/// exercises single-variable annealing-style moves as well as poisoned
/// multi-field updates.
pub fn spec_delta(rng: &mut Rng64) -> SpecDelta {
    let hostile = rng.range_usize(3) == 0;
    fn field(rng: &mut Rng64, hostile: bool, lo: f64, hi: f64) -> Option<f64> {
        if rng.range_usize(3) == 0 {
            None
        } else if hostile && rng.range_usize(3) == 0 {
            Some(hostile_f64(rng))
        } else {
            Some(plausible_f64(rng, lo, hi))
        }
    }
    SpecDelta {
        gain: field(rng, hostile, 1.5, 5e4),
        ugf_hz: field(rng, hostile, 1e3, 5e8),
        area_max_m2: field(rng, hostile, 1e-12, 1e-6),
        ibias: field(rng, hostile, 1e-7, 1e-3),
        zout_ohm: match rng.range_usize(4) {
            0 => Some(None),
            1 => Some(Some(field(rng, hostile, 1.0, 1e6).unwrap_or(1e3))),
            _ => None,
        },
        cl: field(rng, hostile, 1e-14, 1e-9),
    }
}

/// One of the six supported op-amp topologies.
pub fn topology(rng: &mut Rng64) -> OpAmpTopology {
    let mirror = match rng.range_usize(3) {
        0 => MirrorTopology::Simple,
        1 => MirrorTopology::Wilson,
        _ => MirrorTopology::Cascode,
    };
    OpAmpTopology::miller(mirror, rng.range_usize(2) == 0)
}

/// A random SPICE deck built from valid, boundary, and hostile lines.
pub fn deck(rng: &mut Rng64) -> String {
    let mut out = String::from("* generated deck\n");
    let lines = rng.range_usize(14);
    for k in 0..lines {
        let line = match rng.range_usize(16) {
            0 => format!(
                "R{k} n{} n{} {}\n",
                rng.range_usize(6),
                rng.range_usize(6),
                value_token(rng)
            ),
            1 => format!("C{k} n{} 0 {}\n", rng.range_usize(6), value_token(rng)),
            2 => format!(
                "L{k} n{} n{} {}\n",
                rng.range_usize(6),
                rng.range_usize(6),
                value_token(rng)
            ),
            3 => format!(
                "V{k} n{} 0 DC {} AC 1\n",
                rng.range_usize(6),
                value_token(rng)
            ),
            4 => format!(
                "I{k} n{} n{} DC {}\n",
                rng.range_usize(6),
                rng.range_usize(6),
                value_token(rng)
            ),
            5 => format!(
                "M{k} n{} n{} n{} n{} {} W={} L={}\n",
                rng.range_usize(6),
                rng.range_usize(6),
                rng.range_usize(6),
                rng.range_usize(6),
                if rng.range_usize(3) == 0 {
                    "NOSUCH"
                } else {
                    "CMOSN"
                },
                value_token(rng),
                value_token(rng),
            ),
            6 => format!("E{k} n1 0 n2 n3 {}\n", value_token(rng)),
            7 => String::from(".subckt inner a b\n"),
            8 => String::from(".ends\n"),
            9 => String::from(".model junk\n"),
            10 => format!("R0 n1 n2 {}\n", value_token(rng)), // duplicate name bait
            11 => format!("Rself{k} n4 n4 1k\n"),             // self-loop
            12 => garbage_line(rng),
            13 => String::from("\n"),
            14 => format!("* comment {k}\n"),
            _ => format!("X{k} a b c sub{k}\n"),
        };
        out.push_str(&line);
    }
    if rng.range_usize(4) != 0 {
        out.push_str(".end\n");
    }
    out
}

/// A well-formed amplifier deck (keeps the valid band honest so Ok paths
/// are exercised too, not just rejections).
pub fn valid_deck(rng: &mut Rng64) -> String {
    let rd = rng.range_f64(10e3, 200e3);
    let w = rng.range_f64(3e-6, 60e-6);
    format!(
        "* generated amplifier\n\
         V1 in 0 DC 1.2 AC 1\n\
         VDD vdd 0 DC 5\n\
         RD vdd out {rd:.1}\n\
         CL out 0 1p\n\
         M1 out in 0 0 CMOSN W={w:.2e} L=2.4u\n\
         .end\n"
    )
}

fn value_token(rng: &mut Rng64) -> String {
    match rng.range_usize(12) {
        0 => String::from("."),
        1 => String::from("+."),
        2 => String::from("+k"),
        3 => String::from("1e-"),
        4 => String::from("1e+"),
        5 => String::from("NaN"),
        6 => String::from("0"),
        7 => String::from("-5k"),
        8 => String::from("1e308"),
        9 => format!("{}meg", 1 + rng.range_usize(99)),
        _ => format!("{:.3}k", rng.range_f64(0.001, 999.0)),
    }
}

fn garbage_line(rng: &mut Rng64) -> String {
    let n = 1 + rng.range_usize(29);
    let mut s = String::new();
    for _ in 0..n {
        // Printable ASCII plus the occasional tab keeps the parser honest
        // without drifting into invalid UTF-8 (strings can't hold that).
        let c = (32 + rng.range_usize(95)) as u8 as char;
        s.push(if rng.range_usize(20) == 0 { '\t' } else { c });
    }
    s.push('\n');
    s
}

/// A programmatically built circuit: elements with plausible values, a few
/// hostile ones (which the builders may reject — both outcomes are fine),
/// always returned together with a node count for picking probe nodes.
pub fn circuit(rng: &mut Rng64) -> Circuit {
    let mut c = Circuit::new("gen");
    let n_nodes = 1 + rng.range_usize(7);
    let nodes: Vec<_> = (0..n_nodes).map(|k| c.node(&format!("n{k}"))).collect();
    let pick = |rng: &mut Rng64| {
        if rng.range_usize(5) == 0 {
            Circuit::GROUND
        } else {
            nodes[rng.range_usize(nodes.len())]
        }
    };
    let elems = rng.range_usize(12);
    for k in 0..elems {
        let a = pick(rng);
        let b = pick(rng);
        let v = if rng.range_usize(4) == 0 {
            hostile_f64(rng)
        } else {
            rng.range_f64(1e-13, 1e6)
        };
        // The builders reject bad values/self-loops with typed errors;
        // rejection is an acceptable outcome here, so results are dropped.
        let _ = match rng.range_usize(6) {
            0 => c.add_resistor(&format!("R{k}"), a, b, v),
            1 => c.add_capacitor(&format!("C{k}"), a, b, v * 1e-12),
            2 => c.add_vsource(&format!("V{k}"), a, b, v, 1.0, SourceWaveform::Dc),
            3 => c.add_idc(&format!("I{k}"), a, b, v * 1e-6),
            4 => c.add_mosfet(
                &format!("M{k}"),
                a,
                b,
                pick(rng),
                Circuit::GROUND,
                if rng.range_usize(2) == 0 {
                    MosPolarity::Nmos
                } else {
                    MosPolarity::Pmos
                },
                if rng.range_usize(4) == 0 {
                    "NOSUCH"
                } else {
                    "CMOSN"
                },
                MosGeometry::new(v * 1e-6, 2.4e-6),
            ),
            _ => c.add_inductor(&format!("Lx{k}"), a, b, v * 1e-9),
        };
    }
    c
}
