//! CLI for the robustness harness.
//!
//! ```text
//! ape-check                  # full sweep: 10,000 cases, seed 0xA9E5EED
//! ape-check --smoke          # CI gate: 200 cases, fixed seed
//! ape-check --cases N        # custom case count
//! ape-check --seed S         # custom base seed (hex or decimal)
//! ```
//!
//! Exit status 0 = every case passed; 1 = at least one failure (each is
//! printed with the seed that reproduces it).

use std::process::ExitCode;

const DEFAULT_SEED: u64 = 0xA9E_5EED;
const FULL_CASES: usize = 10_000;
const SMOKE_CASES: usize = 200;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut cases = FULL_CASES;
    let mut seed = DEFAULT_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cases = SMOKE_CASES,
            "--cases" => match args.next().as_deref().and_then(parse_u64) {
                Some(n) => cases = n as usize,
                None => return usage("--cases needs a number"),
            },
            "--seed" => match args.next().as_deref().and_then(parse_u64) {
                Some(s) => seed = s,
                None => return usage("--seed needs a number"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Deliberate panics (fault injection, and any bug this harness exists
    // to catch) otherwise spam stderr with hook output for every unwind.
    std::panic::set_hook(Box::new(|_| {}));
    let t0 = std::time::Instant::now();
    let report = ape_check::run_all(seed, cases);
    let _ = std::panic::take_hook();

    println!(
        "ape-check: {} cases, seed {seed:#x}, {:.1}s",
        report.total_cases(),
        t0.elapsed().as_secs_f64()
    );
    for (entry, n) in &report.cases {
        println!("  {entry:<20} {n:>6} cases");
    }
    if report.passed() {
        println!("PASS: no panics, all errors typed, all Ok invariants held");
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} case(s) violated the contract",
            report.failures.len()
        );
        for f in &report.failures {
            println!("  {f}");
        }
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ape-check: {err}");
    }
    eprintln!("usage: ape-check [--smoke] [--cases N] [--seed S]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
