//! Drivers: one generated case through one public entry point, under
//! `catch_unwind`, with the three assertions every call must satisfy:
//! no panic, every `Err` renders a non-empty message, and `Ok` payloads
//! respect their basic invariants (positive area/power, finite numbers).

use crate::gen;
use ape_anneal::Rng64;
use ape_core::graph::reset_thread_graph;
use ape_core::netest::estimate_netlist;
use ape_core::opamp::OpAmp;
use ape_netlist::{parse_spice, NodeId};
use ape_oblx::{synthesize, DesignPoint, InitialPoint, SynthesisOptions};
use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, transient, TranOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The outcome of one fuzz case.
pub struct CaseOutcome {
    /// Which entry point ran.
    pub entry: &'static str,
    /// `None` = the case passed; `Some` = a human-readable failure.
    pub failure: Option<String>,
}

fn run_case<F: FnOnce() -> Option<String>>(entry: &'static str, seed: u64, f: F) -> CaseOutcome {
    let failure = match catch_unwind(AssertUnwindSafe(f)) {
        Ok(None) => None,
        Ok(Some(msg)) => Some(format!("{entry} seed {seed:#x}: {msg}")),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string payload".to_string());
            Some(format!("{entry} seed {seed:#x}: PANIC: {msg}"))
        }
    };
    CaseOutcome { entry, failure }
}

/// Checks that an error value renders a non-empty message.
fn err_message_ok<E: std::error::Error>(e: &E) -> Option<String> {
    if e.to_string().trim().is_empty() {
        Some(format!("error with empty message: {e:?}"))
    } else {
        None
    }
}

fn finite_or(v: Option<f64>, what: &str) -> Option<String> {
    match v {
        Some(x) if !x.is_finite() => Some(format!("non-finite {what}: {x}")),
        _ => None,
    }
}

/// `parse_spice` on a hostile or valid deck.
pub fn parse(seed: u64) -> CaseOutcome {
    run_case("parse_spice", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let text = if rng.range_usize(5) == 0 {
            gen::valid_deck(&mut rng)
        } else {
            gen::deck(&mut rng)
        };
        match parse_spice(&text) {
            Ok(_) => None,
            Err(e) => err_message_ok(&e),
        }
    })
}

/// `OpAmp::design` on a possibly poisoned spec.
pub fn design(seed: u64) -> CaseOutcome {
    run_case("OpAmp::design", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let tech = gen::technology(&mut rng);
        let topo = gen::topology(&mut rng);
        let spec = gen::opamp_spec(&mut rng);
        match OpAmp::design(&tech, topo, spec) {
            Err(e) => err_message_ok(&e),
            Ok(amp) => {
                if !(amp.perf.power_w.is_finite() && amp.perf.power_w > 0.0) {
                    return Some(format!("non-positive power {}", amp.perf.power_w));
                }
                if !(amp.perf.gate_area_m2.is_finite() && amp.perf.gate_area_m2 > 0.0) {
                    return Some(format!("non-positive area {}", amp.perf.gate_area_m2));
                }
                finite_or(amp.perf.dc_gain, "dc gain")
                    .or_else(|| finite_or(amp.perf.ugf_hz, "ugf"))
                    .or_else(|| finite_or(amp.perf.bw_hz, "bandwidth"))
                    .or_else(|| finite_or(amp.perf.slew_v_per_s, "slew rate"))
            }
        }
    })
}

/// Incremental re-estimation vs a cold run on a seeded random delta: after
/// `OpAmp::design` warms the estimation graph, `OpAmp::redesign` with the
/// delta must agree bit for bit with a from-scratch design of the updated
/// spec — `Ok` payloads compared through their `Debug` rendering (`f64`
/// prints its unique shortest round-trip form) and errors message for
/// message. Hostile deltas must come back as typed errors on both paths.
pub fn incremental(seed: u64) -> CaseOutcome {
    run_case("OpAmp::redesign", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let tech = gen::technology(&mut rng);
        let topo = gen::topology(&mut rng);
        let spec = gen::opamp_spec(&mut rng);
        let delta = gen::spec_delta(&mut rng);
        reset_thread_graph();
        let base = match OpAmp::design(&tech, topo, spec) {
            Ok(amp) => amp,
            // An unsizable base spec leaves nothing to redesign; the error
            // itself must still be well-formed.
            Err(e) => return err_message_ok(&e),
        };
        let warm = OpAmp::redesign(&tech, &base, &delta);
        reset_thread_graph();
        let cold = OpAmp::design(&tech, topo, delta.apply(&spec));
        reset_thread_graph();
        let (w, c) = (format!("{warm:?}"), format!("{cold:?}"));
        if w != c {
            return Some(format!(
                "incremental diverged from cold for {delta:?}:\n warm: {w}\n cold: {c}"
            ));
        }
        match &warm {
            Err(e) => err_message_ok(e),
            Ok(_) => None,
        }
    })
}

/// Executor task-ordering fuzz: a seeded batch of design requests —
/// hostile specs included — goes through `OpAmp::design_many_on` on
/// executors of several worker counts, so the tasks interleave, steal,
/// and fail in whatever order the scheduler produces. Every slot must
/// agree bit for bit (Ok payloads via their `Debug` rendering, errors
/// message for message) with the sequential `OpAmp::design` loop: task
/// ordering is a performance knob, never an observable one.
pub fn exec_order(seed: u64) -> CaseOutcome {
    run_case("exec::design_many", seed, || {
        use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
        let mut rng = Rng64::seed_from_u64(seed);
        let tech = gen::technology(&mut rng);
        let n = 2 + rng.range_usize(4); // 2..=5 requests per batch
        let requests: Vec<(OpAmpTopology, OpAmpSpec)> = (0..n)
            .map(|_| (gen::topology(&mut rng), gen::opamp_spec(&mut rng)))
            .collect();
        reset_thread_graph();
        let sequential: Vec<String> = requests
            .iter()
            .map(|&(topo, spec)| format!("{:?}", OpAmp::design(&tech, topo, spec)))
            .collect();
        // Worker counts chosen to stress distinct schedules: 1 (tasks
        // serialize but still cross the scope machinery), a seed-picked
        // small count, and more workers than tasks (some steal nothing).
        for workers in [1, 2 + rng.range_usize(2), n + 2] {
            let exec = ape_exec::Executor::new(workers);
            reset_thread_graph();
            let parallel = OpAmp::design_many_on(&exec, &tech, &requests);
            reset_thread_graph();
            for (k, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
                let par = format!("{par:?}");
                if *seq != par {
                    return Some(format!(
                        "slot {k} diverged at {workers} workers:\n sequential: {seq}\n parallel:   {par}"
                    ));
                }
            }
        }
        None
    })
}

/// `estimate_netlist` on a generated circuit (including an out-of-range
/// output node every few cases).
pub fn netest(seed: u64) -> CaseOutcome {
    run_case("estimate_netlist", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let (ckt, tech) = if rng.range_usize(3) == 0 {
            match parse_spice(&gen::valid_deck(&mut rng)) {
                Ok(p) => p,
                Err(e) => return err_message_ok(&e),
            }
        } else {
            (gen::circuit(&mut rng), gen::technology(&mut rng))
        };
        let out = if rng.range_usize(6) == 0 {
            NodeId::new(rng.range_usize(1000) as u32) // often out of range
        } else {
            NodeId::new(rng.range_usize(ckt.num_nodes().max(1)) as u32)
        };
        match estimate_netlist(&ckt, &tech, out) {
            Err(e) => err_message_ok(&e),
            Ok(est) => {
                if !est.perf.power_w.is_finite() {
                    return Some(format!("non-finite power {}", est.perf.power_w));
                }
                finite_or(est.perf.dc_gain, "dc gain")
                    .or_else(|| finite_or(est.perf.bw_hz, "bandwidth"))
                    .or_else(|| finite_or(est.perf.ugf_hz, "ugf"))
                    .or_else(|| finite_or(est.phase_margin_deg, "phase margin"))
            }
        }
    })
}

/// `dc_operating_point`, then — when it converges — `ac_sweep` over a
/// possibly degenerate grid and `transient` over a possibly degenerate
/// window. One seed exercises the whole simulator surface.
pub fn spice(seed: u64) -> CaseOutcome {
    run_case("spice", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let (ckt, tech) = if rng.range_usize(3) == 0 {
            match parse_spice(&gen::valid_deck(&mut rng)) {
                Ok(p) => p,
                Err(e) => return err_message_ok(&e),
            }
        } else {
            (gen::circuit(&mut rng), gen::technology(&mut rng))
        };
        let op = match dc_operating_point(&ckt, &tech) {
            Ok(op) => op,
            Err(e) => return err_message_ok(&e),
        };
        let freqs = match decade_frequencies(
            gen::hostile_f64(&mut rng).abs(),
            gen::hostile_f64(&mut rng).abs(),
            rng.range_usize(5),
        ) {
            Ok(f) => f,
            Err(e) => {
                if let Some(m) = err_message_ok(&e) {
                    return Some(m);
                }
                vec![1.0, 1e3, 1e6]
            }
        };
        if let Err(e) = ac_sweep(&ckt, &tech, &op, &freqs) {
            if let Some(m) = err_message_ok(&e) {
                return Some(m);
            }
        }
        let opts = TranOptions::new(gen::hostile_f64(&mut rng), gen::hostile_f64(&mut rng).abs());
        if let Err(e) = transient(&ckt, &tech, &op, opts) {
            if let Some(m) = err_message_ok(&e) {
                return Some(m);
            }
        }
        None
    })
}

/// `oblx::synthesize` with a tiny annealing budget, blind or seeded from a
/// possibly wrong-dimension design point.
pub fn oblx(seed: u64) -> CaseOutcome {
    run_case("oblx::synthesize", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let tech = gen::technology(&mut rng);
        let topo = gen::topology(&mut rng);
        let spec = gen::opamp_spec(&mut rng);
        let init = match rng.range_usize(3) {
            0 => InitialPoint::Blind,
            1 => InitialPoint::ApeSeeded {
                // Deliberately wrong-dimension / hostile-valued point.
                point: DesignPoint {
                    values: (0..rng.range_usize(12))
                        .map(|_| gen::hostile_f64(&mut rng))
                        .collect(),
                },
                interval_frac: gen::hostile_f64(&mut rng),
            },
            _ => InitialPoint::ApeSeeded {
                point: DesignPoint {
                    values: (0..10).map(|_| rng.range_f64(1e-7, 1e-4)).collect(),
                },
                interval_frac: 0.2,
            },
        };
        let opts = SynthesisOptions {
            max_evals: 4,
            moves_per_temp: 2,
            ..SynthesisOptions::default()
        };
        match synthesize(&tech, topo, &spec, &init, &opts) {
            Err(e) => err_message_ok(&e),
            Ok(out) => {
                if !out.cost.is_finite() && !out.cost.is_nan() {
                    // A cost of +inf is a legitimate "everything violated"
                    // grade; NaN would mean the cost function leaked poison.
                    return None;
                }
                if out.cost.is_nan() {
                    return Some("synthesis returned NaN cost".to_string());
                }
                None
            }
        }
    })
}

/// Every `ape-solve` engine on hostile boxes, costs, and budgets: solvers
/// must respect the evaluation ceiling exactly, never report a NaN best
/// cost (non-finite landscapes are graded as `+inf`), and always return a
/// state inside the box.
pub fn solver(seed: u64) -> CaseOutcome {
    use ape_solve::{
        Budget, CmaEs, NewtonPolish, ParticleSwarm, Portfolio, Problem, SaSolver, SolveResult,
        Solver, VectorRanges,
    };
    run_case("solve::Solver", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let dim = rng.range_usize(4);
        let pairs: Vec<(f64, f64)> = (0..dim)
            .map(|_| match rng.range_usize(4) {
                // Hostile bounds: NaN/inf/reversed — must be rejected by
                // `VectorRanges::new`, never survive into a solver.
                0 => (gen::hostile_f64(&mut rng), gen::hostile_f64(&mut rng)),
                1 => {
                    let c = rng.range_f64(-5.0, 5.0);
                    (c, c) // degenerate (pinned) axis
                }
                _ => {
                    let lo = rng.range_f64(-10.0, 9.0);
                    (lo, lo + rng.range_f64(1e-9, 10.0))
                }
            })
            .collect();
        let ranges = match VectorRanges::new(pairs) {
            Ok(r) => r,
            Err(msg) => {
                return if msg.trim().is_empty() {
                    Some("VectorRanges::new rejected with empty message".to_string())
                } else {
                    None
                };
            }
        };
        let mode = rng.range_usize(4);
        let cost = move |x: &[f64]| match mode {
            0 => x.iter().map(|v| v * v).sum::<f64>(),
            1 => f64::NAN,
            2 => {
                if x.first().copied().unwrap_or(0.0) > 0.0 {
                    f64::NAN
                } else {
                    x.iter().sum()
                }
            }
            _ => f64::INFINITY,
        };
        let start: Vec<f64> = (0..ranges.len())
            .map(|_| rng.range_f64(-1e3, 1e3))
            .collect();
        let problem = Problem::new(&ranges, &cost).with_start(start);
        let budget = Budget {
            max_evals: rng.range_usize(65),
            seed: rng.next_u64(),
        };
        let result: SolveResult = match rng.range_usize(5) {
            0 => SaSolver::default().solve(&problem, &budget, &mut ()),
            1 => CmaEs::default().solve(&problem, &budget, &mut ()),
            2 => ParticleSwarm::default().solve(&problem, &budget, &mut ()),
            3 => NewtonPolish::default().solve(&problem, &budget, &mut ()),
            _ => {
                let exec = ape_exec::Executor::new(rng.range_usize(3));
                let race = Portfolio::standard().race(&problem, &budget, &exec);
                // A race spends up to members × budget in total, but each
                // member individually stays under the ceiling.
                for m in &race.members {
                    if m.result.evals > budget.max_evals {
                        return Some(format!(
                            "portfolio member {} overspent: {} > {}",
                            m.name, m.result.evals, budget.max_evals
                        ));
                    }
                }
                race.best
            }
        };
        if result.evals > budget.max_evals {
            return Some(format!(
                "budget overrun: {} > {}",
                result.evals, budget.max_evals
            ));
        }
        if result.best_cost.is_nan() {
            return Some("NaN best cost leaked through sanitisation".to_string());
        }
        if !ranges.contains(&result.best) {
            return Some(format!("best state escaped the box: {:?}", result.best));
        }
        None
    })
}

/// Hostile calibration tables through every layer that accepts one:
/// construction (`Calibration::set`), persistence (`Calibration::parse`),
/// fitting (`ape_calib::fit`), and application inside the estimation
/// graph. Bad factors, non-finite response-surface terms, wrong arities
/// and unknown equation ids must come back as typed errors; a table whose
/// response surface overflows at apply time must fail the evaluation with
/// a typed error and leave the thread memo unpoisoned — an uncalibrated
/// redesign afterwards must still match the original bit for bit.
pub fn calibration(seed: u64) -> CaseOutcome {
    use ape_calib::{fit, Calibration, Sample};
    use ape_core::graph::set_thread_calibration;
    use std::sync::Arc;
    run_case("calib::table", seed, || {
        let mut rng = Rng64::seed_from_u64(seed);
        let tfp = rng.next_u64();
        match rng.range_usize(4) {
            // Hostile construction: set() must accept exactly the valid
            // combinations and reject the rest with non-empty messages.
            0 => {
                let mut table = Calibration::identity(tfp, "fuzz");
                for _ in 0..8 {
                    let eq = match rng.range_usize(4) {
                        0 => "l3.opamp",
                        1 => "l2.mirror",
                        2 => "bogus.equation",
                        _ => "",
                    };
                    let metric = match rng.range_usize(4) {
                        0 => "dc_gain",
                        1 => "power_w",
                        2 => "not_a_metric",
                        _ => "",
                    };
                    let factor = match rng.range_usize(4) {
                        0 => rng.range_f64(0.1, 10.0),
                        _ => gen::hostile_f64(&mut rng),
                    };
                    let terms: Vec<f64> = (0..rng.range_usize(4))
                        .map(|_| match rng.range_usize(3) {
                            0 => gen::hostile_f64(&mut rng),
                            _ => rng.range_f64(-2.0, 2.0),
                        })
                        .collect();
                    let valid_names = !eq.is_empty()
                        && !eq.starts_with("bogus")
                        && (metric == "dc_gain" || metric == "power_w");
                    let valid_factor = factor.is_finite() && factor > 0.0;
                    let valid_terms = (terms.is_empty() || terms.len() == 2)
                        && terms.iter().all(|t| t.is_finite());
                    match table.set(eq, metric, factor, &terms) {
                        Ok(()) => {
                            if !(valid_names && valid_factor && valid_terms) {
                                return Some(format!(
                                    "set accepted a hostile entry: {eq}/{metric} \
                                     factor {factor} terms {terms:?}"
                                ));
                            }
                        }
                        Err(e) => {
                            if valid_names && valid_factor && valid_terms {
                                return Some(format!("set rejected a valid entry: {e}"));
                            }
                            if let Some(f) = err_message_ok(&e) {
                                return Some(f);
                            }
                        }
                    }
                }
                // Whatever survived must round-trip bit-exactly.
                let text = table.render();
                match Calibration::parse(&text) {
                    Err(e) => Some(format!("round-trip parse failed: {e}")),
                    Ok(back) if back.fingerprint() != table.fingerprint() => {
                        Some("round-trip changed the fingerprint".to_string())
                    }
                    Ok(_) => None,
                }
            }
            // Hostile persistence: corrupted or garbage documents parse to
            // typed errors, never panics.
            1 => {
                let mut table = Calibration::identity(tfp, "fuzz");
                let _ = table.set("l3.opamp", "ugf_hz", 1.25, &[0.01, -0.02]);
                let mut text = table.render();
                match rng.range_usize(4) {
                    0 => text = text.replace("factor", "fact\u{0}r"),
                    1 => {
                        let cut = rng.range_usize(text.len().max(1));
                        text.truncate(cut);
                    }
                    2 => text = format!("{{\"garbage\": {}}}", rng.next_u64()),
                    _ => text.push_str("]]}"),
                }
                match Calibration::parse(&text) {
                    Ok(_) => None, // a mutation can still be a valid doc
                    Err(e) => err_message_ok(&e),
                }
            }
            // Hostile fitting: unknown ids are typed errors; degenerate
            // samples are skipped; a valid fit is deterministic.
            2 => {
                let hostile = rng.range_usize(3) == 0;
                let samples: Vec<Sample> = (0..rng.range_usize(12))
                    .map(|_| {
                        let eq = if hostile && rng.range_usize(3) == 0 {
                            "l9.unknown"
                        } else {
                            "l3.opamp"
                        };
                        Sample::new(
                            eq,
                            "dc_gain",
                            gen::hostile_f64(&mut rng),
                            gen::hostile_f64(&mut rng),
                        )
                    })
                    .collect();
                let bad = samples.iter().any(|s| s.equation != "l3.opamp");
                match (fit(tfp, "fuzz", &samples), fit(tfp, "fuzz", &samples)) {
                    (Err(e), _) => {
                        if bad {
                            err_message_ok(&e)
                        } else {
                            Some(format!("fit rejected degenerate-only samples: {e}"))
                        }
                    }
                    (Ok(a), Ok(b)) => {
                        if bad {
                            return Some("fit accepted an unknown equation id".to_string());
                        }
                        if a.fingerprint() != b.fingerprint() {
                            return Some("fit is not deterministic".to_string());
                        }
                        None
                    }
                    (Ok(_), Err(e)) => Some(format!("fit nondeterministic: second run: {e}")),
                }
            }
            // Application: an overflowing response surface must produce a
            // typed error and leave the memo unpoisoned.
            _ => {
                let tech = gen::technology(&mut rng);
                let topo = gen::topology(&mut rng);
                let spec = gen::opamp_spec(&mut rng);
                set_thread_calibration(None);
                reset_thread_graph();
                let base = format!("{:?}", OpAmp::design(&tech, topo, spec));
                let mut poison = Calibration::identity(tech.fingerprint(), "poison");
                // exp(1e4·ln v) overflows for any |ln v| ≳ 0.07.
                if let Err(e) = poison.set("l3.opamp", "dc_gain", 1.0, &[1e4, 1e4]) {
                    return Some(format!("valid poison table rejected: {e}"));
                }
                set_thread_calibration(Some(Arc::new(poison)));
                let calibrated = OpAmp::design(&tech, topo, spec);
                set_thread_calibration(None);
                if let Err(e) = &calibrated {
                    if let Some(f) = err_message_ok(e) {
                        return Some(f);
                    }
                }
                if let Ok(amp) = &calibrated {
                    for (name, v) in [
                        ("dc_gain", amp.perf.dc_gain),
                        ("ugf", amp.perf.ugf_hz),
                        ("bw", amp.perf.bw_hz),
                    ] {
                        if let Some(f) = finite_or(v, name) {
                            return Some(f);
                        }
                    }
                }
                let again = format!("{:?}", OpAmp::design(&tech, topo, spec));
                reset_thread_graph();
                if again != base {
                    return Some(format!(
                        "memo poisoned by failed calibrated run:\n before: {base}\n after:  {again}"
                    ));
                }
                None
            }
        }
    })
}
