//! Fault injection for the `ape-serve` wire protocol.
//!
//! One resident [`ServerState`] (the stdio-mode daemon, no socket) is
//! hammered with seeded batches of mixed traffic: valid requests, hostile
//! JSON (truncated, garbage, deep nesting, bad types), oversized lines
//! past the configured cap, unknown technology fingerprints, and abrupt
//! EOF with requests still in flight. Three properties are enforced per
//! batch:
//!
//! 1. **One response per non-blank line.** Every line — valid or hostile —
//!    must produce exactly one NDJSON response (a typed error counts; a
//!    missing response means a wedged worker or a dropped request).
//! 2. **Every response parses.** Each output line must round-trip through
//!    the serve JSON parser and carry `id` and `ok` fields.
//! 3. **The connection survives.** A trailing `ping` with a sentinel id
//!    must come back `ok:true` after the hostile traffic.
//!
//! Batches run under `catch_unwind`; any panic is a failure.

use ape_anneal::Rng64;
use ape_netlist::Technology;
use ape_serve::json::{self, Value};
use ape_serve::{serve_stream, standalone_state, ServerConfig, ServerState};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Line cap for the fuzz server — small, so seeded oversize is cheap.
const MAX_LINE: usize = 2048;
/// Sentinel id for the liveness ping that closes every batch.
const SENTINEL: u64 = 999_999;

/// Shared in-memory sink standing in for the TCP write half.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn valid_design(rng: &mut Rng64, id: u64) -> String {
    let gain = 50.0 + rng.f64() * 300.0;
    let ugf = 1e6 + rng.f64() * 5e6;
    format!(
        "{{\"op\":\"design\",\"id\":{id},\"topology\":{{\"mirror\":\"simple\"}},\
         \"spec\":{{\"gain\":{gain},\"ugf_hz\":{ugf},\"area_max_m2\":2e-8,\
         \"ibias\":1e-5,\"cl\":1e-11}}}}"
    )
}

/// One seeded protocol line: valid traffic, or one of the hostile shapes
/// the daemon must answer with a typed error.
fn line(rng: &mut Rng64, id: u64) -> String {
    match rng.range_usize(12) {
        0 => format!("{{\"op\":\"ping\",\"id\":{id}}}"),
        1 => format!("{{\"op\":\"stats\",\"id\":{id}}}"),
        2 | 3 => valid_design(rng, id),
        // Unknown technology fingerprint: typed 404, cache untouched.
        4 => {
            let fp = rng.next_u64();
            let mut l = valid_design(rng, id);
            l.truncate(l.len() - 1);
            l.push_str(&format!(",\"technology\":\"{fp:#018x}\"}}"));
            l
        }
        // Truncated JSON: cut a valid request mid-token.
        5 => {
            let full = valid_design(rng, id);
            let cut = 1 + rng.range_usize(full.len() - 1);
            full[..cut].to_string()
        }
        // Garbage bytes (newline-free so it stays one line).
        6 => {
            let n = 1 + rng.range_usize(64);
            (0..n)
                .map(|_| char::from(32 + (rng.next_u64() % 95) as u8))
                .collect()
        }
        // Oversized line past the cap: must 413 and resync.
        7 => format!(
            "{{\"op\":\"ping\",\"id\":{id},\"pad\":\"{}\"}}",
            "x".repeat(MAX_LINE * 2)
        ),
        // Nesting past the parser's depth limit.
        8 => format!("{}1{}", "[".repeat(80), "]".repeat(80)),
        // Wrong types and unknown ops.
        9 => format!("{{\"op\":42,\"id\":{id}}}"),
        10 => format!("{{\"op\":\"warp_core\",\"id\":{id}}}"),
        // Non-finite number literals the JSON grammar rejects.
        _ => format!("{{\"op\":\"design\",\"id\":{id},\"spec\":{{\"gain\":NaN}}}}"),
    }
}

/// Drives one seeded batch through a resident state; returns failures.
fn batch(state: &Arc<ServerState>, seed: u64, lines_per_batch: usize) -> Vec<String> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut input = String::new();
    let mut expected = 0usize;
    for id in 0..lines_per_batch as u64 {
        let l = line(&mut rng, id + 1);
        if !l.trim().is_empty() {
            expected += 1;
        }
        input.push_str(&l);
        input.push('\n');
    }
    input.push_str(&format!("{{\"op\":\"ping\",\"id\":{SENTINEL}}}\n"));
    expected += 1;

    let sink = SharedBuf::default();
    serve_stream(state, input.as_bytes(), sink.clone());
    let out = sink.take();
    let text = String::from_utf8_lossy(&out);

    let mut failures = Vec::new();
    let mut responses = 0usize;
    let mut sentinel_ok = false;
    for raw in text.lines().filter(|l| !l.trim().is_empty()) {
        responses += 1;
        match json::parse(raw) {
            Ok(v) => {
                let id = v.get("id").and_then(Value::as_f64);
                let ok = v.get("ok");
                if id.is_none() || ok.is_none() {
                    failures.push(format!(
                        "serve seed {seed:#x}: response missing id/ok: {raw}"
                    ));
                } else if id == Some(SENTINEL as f64) {
                    sentinel_ok = matches!(ok, Some(Value::Bool(true)));
                }
            }
            Err(e) => failures.push(format!(
                "serve seed {seed:#x}: unparseable response ({e}): {raw}"
            )),
        }
    }
    if responses != expected {
        failures.push(format!(
            "serve seed {seed:#x}: {expected} non-blank lines sent, {responses} responses"
        ));
    }
    if !sentinel_ok {
        failures.push(format!(
            "serve seed {seed:#x}: connection did not answer the trailing ping \
             (wedged worker or dropped request)"
        ));
    }
    failures
}

/// Runs `batches` seeded hostile-protocol batches against one resident
/// daemon state (workers stay up across batches — a wedge in batch `k`
/// surfaces in batch `k+1`'s sentinel).
pub fn run(base_seed: u64, batches: usize) -> Vec<String> {
    let state = standalone_state(
        Technology::default_1p2um(),
        ServerConfig {
            workers: 2,
            max_line_bytes: MAX_LINE,
            allow_remote_shutdown: false,
            ..ServerConfig::default()
        },
    );
    let mut failures = Vec::new();
    for k in 0..batches {
        let seed = base_seed.wrapping_add((k as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        match catch_unwind(AssertUnwindSafe(|| batch(&state, seed, 24))) {
            Ok(f) => failures.extend(f),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string payload".to_string());
                failures.push(format!("serve seed {seed:#x}: PANIC: {msg}"));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_batches_pass() {
        let failures = run(0x5EED_5E4E, 3);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }
}
