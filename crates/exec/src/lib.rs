//! `ape-exec` — the process-wide work-stealing executor under every
//! parallel hot path in the APE stack.
//!
//! Before this crate existed, each parallel site spawned its own OS
//! threads: `ac_sweep` stood up a `std::thread::scope` per sweep, the
//! farm ran a private worker pool, and `ape-serve` layered connection
//! threads on top of both. On small circuits the spawn/join cost
//! dominated the actual numerics, and when the layers ran together they
//! oversubscribed the machine. This executor replaces all of that with
//! one lazily-initialized pool sized to the detected parallelism.
//!
//! # Design
//!
//! * **Per-worker LIFO deques + a global injector.** A worker pushes and
//!   pops its own deque from the back (hot caches), steals from other
//!   workers and the injector from the front (oldest first, fair).
//! * **Tickets, not tasks, in the deques.** Scoped work lives in a queue
//!   owned by its [`Scope`]; the deques only carry redeemable *tickets*
//!   pointing at that scope. A ticket whose scope has already drained is
//!   a no-op, which is what makes the owner thread free to help-drain
//!   its own scope without racing the stealers for specific items.
//! * **Scoped spawn with borrowed data.** [`Executor::scope`] mirrors
//!   `std::thread::scope`: tasks may borrow from the caller's stack, and
//!   `scope` does not return (normally or by unwind) until every spawned
//!   task has finished. Panics inside tasks are caught, counted under
//!   `ape.exec.task_panicked`, and re-thrown at the scope exit.
//! * **Zero-worker degradation.** On a single-core box the global
//!   executor has no worker threads at all; scoped and detached work
//!   runs inline on the calling thread in submission order. Every
//!   consumer of this crate is written so that the inline path is the
//!   sequential path — which is also how bit-identity of parallel vs
//!   sequential results is made trivial to reason about.
//! * **Cancellation stays cooperative.** The executor knows nothing of
//!   `ape_core::cancel` (that would invert the crate DAG); instead the
//!   call sites capture the submitting thread's `CancelToken` in the
//!   task closure and re-install it on the running thread, so a token
//!   cancelled mid-fan-out stops workers at the same probe points as it
//!   stops the sequential loop.
//!
//! Instrumentation: `ape.exec.workers` (gauge), `ape.exec.spawned`,
//! `ape.exec.scope_tasks`, `ape.exec.steals`, `ape.exec.inline`,
//! `ape.exec.task_panicked`, `ape.exec.spawn_retry`,
//! `ape.exec.spawn_failed`, and the one-shot `ape.exec.clamped`.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::Duration;

/// A heap-allocated unit of work. Scoped tasks are lifetime-erased into
/// this type; see the safety argument in [`Scope::spawn`].
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, ignoring poisoning: the executor's shared state is
/// plain queues/counters that stay consistent even if a holder panicked
/// (task panics are caught before they can unwind through a lock).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// What sits in the deques: either a detached job (owns its closure) or
/// a redeemable hint that some scope has a task waiting.
enum Ticket {
    Job(Task),
    Scope(Arc<ScopeCore>),
}

/// Shared state of one `scope()` invocation.
struct ScopeCore {
    /// Tasks spawned into the scope and not yet claimed by anyone.
    tasks: Mutex<VecDeque<Task>>,
    /// Tasks spawned and not yet *finished* (claimed ones count too).
    pending: AtomicUsize,
    /// Owner parks here until `pending` drops to zero.
    idle: Mutex<()>,
    idle_cond: Condvar,
    /// First panic raised by any task, re-thrown at scope exit.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeCore {
    fn new() -> Self {
        ScopeCore {
            tasks: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cond: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn pop_task(&self) -> Option<Task> {
        lock(&self.tasks).pop_front()
    }

    /// Runs one claimed task, catching its panic and notifying the owner
    /// if it was the last one standing.
    fn run_task(&self, task: Task) {
        if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
            ape_probe::counter("ape.exec.task_panicked", 1);
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the lock so a waiter between its check and its wait
            // cannot miss this notification.
            let _g = lock(&self.idle);
            self.idle_cond.notify_all();
        }
    }

    /// Blocks until every spawned task has finished.
    fn wait_idle(&self) {
        let mut g = lock(&self.idle);
        while self.pending.load(Ordering::Acquire) != 0 {
            g = wait(&self.idle_cond, g);
        }
    }
}

/// Work-stealing pool internals, shared between the handle and workers.
struct Inner {
    deques: Vec<Mutex<VecDeque<Ticket>>>,
    injector: Mutex<VecDeque<Ticket>>,
    /// Unclaimed wake tokens: one is minted per posted ticket, consumed
    /// by a worker leaving the parked state. Tokens may outnumber real
    /// work (a scanning worker can grab a ticket without paying a
    /// token), which costs a spurious wake, never a lost one.
    gate: Mutex<u64>,
    gate_cond: Condvar,
    shutdown: AtomicBool,
}

thread_local! {
    /// `(address of Inner, worker index)` on executor worker threads.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

impl Inner {
    /// Queues a ticket — on the current worker's own deque when the
    /// caller is one of this executor's workers, else on the injector —
    /// and mints a wake token.
    fn post(&self, ticket: Ticket) {
        let me = WORKER.with(Cell::get);
        match me {
            Some((addr, idx)) if addr == self as *const Inner as usize => {
                lock(&self.deques[idx]).push_back(ticket);
            }
            _ => lock(&self.injector).push_back(ticket),
        }
        let mut tokens = lock(&self.gate);
        *tokens += 1;
        self.gate_cond.notify_one();
    }

    /// Own deque from the back, injector from the front, then steal from
    /// the other workers' fronts.
    fn find_work(&self, idx: usize) -> Option<Ticket> {
        if let Some(t) = lock(&self.deques[idx]).pop_back() {
            return Some(t);
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            return Some(t);
        }
        for (j, dq) in self.deques.iter().enumerate() {
            if j == idx {
                continue;
            }
            if let Some(t) = lock(dq).pop_front() {
                ape_probe::counter("ape.exec.steals", 1);
                return Some(t);
            }
        }
        None
    }

    fn run_ticket(&self, ticket: Ticket) {
        match ticket {
            Ticket::Job(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    ape_probe::counter("ape.exec.task_panicked", 1);
                }
            }
            Ticket::Scope(core) => {
                // The ticket is only a hint; the scope owner (or another
                // thief) may already have drained the queue.
                if let Some(task) = core.pop_task() {
                    core.run_task(task);
                }
            }
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, idx: usize) {
    WORKER.with(|c| c.set(Some((Arc::as_ptr(inner) as usize, idx))));
    loop {
        if let Some(t) = inner.find_work(idx) {
            inner.run_ticket(t);
            continue;
        }
        let mut tokens = lock(&inner.gate);
        loop {
            if inner.shutdown.load(Ordering::Acquire) {
                drop(tokens);
                // Drain stragglers so in-flight scopes can complete.
                while let Some(t) = inner.find_work(idx) {
                    inner.run_ticket(t);
                }
                return;
            }
            if *tokens > 0 {
                *tokens -= 1;
                break;
            }
            tokens = wait(&inner.gate_cond, tokens);
        }
    }
}

/// A work-stealing thread pool. Most call sites want the shared
/// [`Executor::global`] instance; tests and benches construct private
/// pools with [`Executor::new`] to pin an exact worker count.
pub struct Executor {
    inner: Arc<Inner>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    workers: usize,
}

impl Executor {
    /// Builds a pool with exactly `workers` OS threads (named
    /// `ape-exec-N`). A failed spawn is retried once after a short
    /// backoff (`ape.exec.spawn_retry`); if the retry also fails the
    /// pool degrades by one worker (`ape.exec.spawn_failed`) instead of
    /// refusing to start. `workers == 0` is valid and means all work
    /// runs inline on the submitting thread.
    pub fn new(workers: usize) -> Executor {
        let inner = Arc::new(Inner {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            gate: Mutex::new(0),
            gate_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            match spawn_worker(&inner, idx) {
                Ok(h) => handles.push(h),
                Err(_) => {
                    ape_probe::counter("ape.exec.spawn_retry", 1);
                    thread::sleep(Duration::from_millis(10));
                    match spawn_worker(&inner, idx) {
                        Ok(h) => handles.push(h),
                        Err(_) => ape_probe::counter("ape.exec.spawn_failed", 1),
                    }
                }
            }
        }
        let spawned = handles.len();
        ape_probe::gauge("ape.exec.workers", spawned as f64);
        Executor {
            inner,
            handles: Mutex::new(handles),
            workers: spawned,
        }
    }

    /// The process-wide shared pool, lazily initialized to
    /// `detected_parallelism() - 1` workers: the submitting thread is
    /// the missing lane, since it help-drains its own scopes. On a
    /// single-core machine this is zero workers — pure inline execution.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(detected_parallelism().saturating_sub(1)))
    }

    /// Number of live worker threads (0 means everything runs inline).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Lanes available to a scoped fan-out: the workers plus the
    /// submitting thread itself.
    pub fn parallelism(&self) -> usize {
        self.workers + 1
    }

    /// Submits a detached fire-and-forget job. With zero workers the job
    /// runs inline, before `spawn` returns. Panics are caught and
    /// counted, never propagated (there is no one to propagate to).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        ape_probe::counter("ape.exec.spawned", 1);
        if self.workers == 0 {
            ape_probe::counter("ape.exec.inline", 1);
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                ape_probe::counter("ape.exec.task_panicked", 1);
            }
            return;
        }
        self.inner.post(Ticket::Job(Box::new(f)));
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing the caller's
    /// stack can be spawned. Does not return until every spawned task
    /// has finished: the calling thread help-drains its own scope's
    /// queue while workers steal from it, then parks until stolen tasks
    /// complete. The first panic from the body or any task is re-thrown
    /// here.
    pub fn scope<'env, T, F>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let core = Arc::new(ScopeCore::new());
        let scope = Scope {
            core: Arc::clone(&core),
            exec: self,
            scope_marker: PhantomData,
            env_marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help-drain: the owner runs queued tasks inline until none are
        // left, then waits out the ones claimed by workers. This is the
        // sound-ness linchpin for `Scope::spawn`'s lifetime erasure —
        // no spawned closure survives this point.
        while let Some(task) = core.pop_task() {
            core.run_task(task);
        }
        core.wait_idle();
        match result {
            Err(body_panic) => resume_unwind(body_panic),
            Ok(v) => {
                if let Some(p) = lock(&core.panic).take() {
                    resume_unwind(p);
                }
                v
            }
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = lock(&self.inner.gate);
            self.inner.gate_cond.notify_all();
        }
        for h in lock(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

fn spawn_worker(inner: &Arc<Inner>, idx: usize) -> std::io::Result<thread::JoinHandle<()>> {
    let inner = Arc::clone(inner);
    thread::Builder::new()
        .name(format!("ape-exec-{idx}"))
        .spawn(move || worker_loop(&inner, idx))
}

/// Spawn surface handed to the closure of [`Executor::scope`]; mirrors
/// `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    core: Arc<ScopeCore>,
    exec: &'scope Executor,
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the environment of the
    /// enclosing [`Executor::scope`] call. Tasks run on worker threads
    /// or inline on the owner during help-drain; submission order is
    /// queue order but completion order is unspecified.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        ape_probe::counter("ape.exec.scope_tasks", 1);
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: only the lifetime is erased. `Executor::scope` drains
        // the task queue and waits for `pending == 0` before returning
        // or unwinding, so the closure (and everything it borrows from
        // 'scope/'env) is dropped before the borrows expire. Stale
        // tickets left in the deques hold only the `ScopeCore`, whose
        // task queue is empty by then.
        let boxed: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                boxed,
            )
        };
        self.core.pending.fetch_add(1, Ordering::AcqRel);
        lock(&self.core.tasks).push_back(boxed);
        // With zero workers nobody could redeem a ticket; the owner's
        // help-drain runs everything inline instead.
        if self.exec.workers > 0 {
            self.exec.inner.post(Ticket::Scope(Arc::clone(&self.core)));
        }
    }
}

/// Hardware parallelism as the OS reports it (1 when unknown).
///
/// Queried once and cached: `std::thread::available_parallelism` re-reads
/// cgroup quota files on every call on Linux, which costs microseconds —
/// [`clamp_workers`] sits on per-call hot paths (one AC sweep is itself
/// only tens of microseconds), so the uncached lookup measurably taxed
/// small-circuit sweep throughput.
pub fn detected_parallelism() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Clamps a requested worker count to
/// `min(requested, detected_parallelism, work_items)`, never below 1.
/// `requested == 0` means "all cores". The first time a request is
/// actually reduced, a one-shot `ape.exec.clamped` counter fires — a
/// breadcrumb for configurations like 8 threads on a 1-core box, which
/// used to *lose* throughput to context switching.
pub fn clamp_workers(requested: usize, work_items: usize) -> usize {
    let avail = detected_parallelism();
    let req = if requested == 0 { avail } else { requested };
    let eff = req.min(avail).min(work_items.max(1)).max(1);
    if eff < req {
        static CLAMPED: AtomicBool = AtomicBool::new(false);
        if !CLAMPED.swap(true, Ordering::Relaxed) {
            ape_probe::counter("ape.exec.clamped", 1);
        }
    }
    eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_fanout_runs_every_task() {
        let exec = Executor::new(4);
        let hits = AtomicU64::new(0);
        exec.scope(|s| {
            for k in 0..100u64 {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(k + 1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), (1..=100).sum::<u64>());
    }

    #[test]
    fn zero_workers_runs_inline_in_submission_order() {
        let exec = Executor::new(0);
        assert_eq!(exec.workers(), 0);
        assert_eq!(exec.parallelism(), 1);
        let mut order = Vec::new();
        {
            let log = Mutex::new(&mut order);
            exec.scope(|s| {
                for k in 0..8 {
                    let log = &log;
                    s.spawn(move || lock(log).push(k));
                }
            });
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn scoped_tasks_can_write_disjoint_borrowed_slices() {
        let exec = Executor::new(2);
        let mut data = vec![0u32; 64];
        exec.scope(|s| {
            for (i, chunk) in data.chunks_mut(7).enumerate() {
                s.spawn(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 7 + j) as u32;
                    }
                });
            }
        });
        let expect: Vec<u32> = (0..64).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn task_panic_propagates_to_scope_caller() {
        let exec = Executor::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("boom in task"));
                s.spawn(|| {});
            });
        }));
        assert!(caught.is_err(), "scope must rethrow a task panic");
    }

    #[test]
    fn task_panic_propagates_inline_too() {
        let exec = Executor::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| s.spawn(|| panic!("inline boom")));
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn detached_spawn_completes() {
        let exec = Executor::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            exec.spawn(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::Relaxed) != 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "detached jobs stalled"
            );
            thread::yield_now();
        }
    }

    #[test]
    fn detached_panic_does_not_kill_the_pool() {
        let exec = Executor::new(1);
        exec.spawn(|| panic!("detached boom"));
        let done = Arc::new(AtomicU64::new(0));
        {
            let done = Arc::clone(&done);
            exec.spawn(move || {
                done.store(1, Ordering::Relaxed);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::Relaxed) != 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "pool died after panic"
            );
            thread::yield_now();
        }
    }

    #[test]
    fn nested_scopes_complete() {
        let exec = Executor::new(3);
        let total = AtomicU64::new(0);
        exec.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    exec_nested(total);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 8);

        fn exec_nested(total: &AtomicU64) {
            // Nested scope on the global pool from an arbitrary thread.
            Executor::global().scope(|inner| {
                for _ in 0..8 {
                    inner.spawn(move || {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    }

    #[test]
    fn drop_joins_workers() {
        let exec = Executor::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            exec.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(exec); // must not hang; stragglers drain on shutdown
    }

    #[test]
    fn clamp_workers_honors_all_three_bounds() {
        let avail = detected_parallelism();
        assert_eq!(clamp_workers(0, usize::MAX), avail);
        assert_eq!(clamp_workers(1, usize::MAX), 1);
        assert_eq!(clamp_workers(usize::MAX, usize::MAX), avail);
        assert_eq!(clamp_workers(8, 3), 3.min(avail));
        assert_eq!(clamp_workers(8, 0), 1);
        assert!(clamp_workers(0, 0) >= 1);
    }

    #[test]
    fn global_is_sized_below_detected_parallelism() {
        let g = Executor::global();
        assert!(g.workers() < detected_parallelism() || g.workers() == 0);
        assert_eq!(g.parallelism(), g.workers() + 1);
    }
}
