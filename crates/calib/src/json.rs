//! Minimal JSON: a value type, a strict recursive-descent parser, and a
//! renderer whose `f64` output is Rust's shortest-roundtrip `Display` form.
//!
//! The renderer's float format is what makes persisted calibration tables
//! and the daemon's wire results *bit-exact*: `f64::Display` prints the
//! shortest decimal string that parses back to the identical bits, so a
//! reader with any correctly-rounded `strtod` recovers exactly the floats
//! the estimator computed. This module started life in `ape-serve`; it
//! lives here so calibration persistence and the wire protocol share one
//! canonical encoding (`ape-serve` re-exports it as `ape_serve::json`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap): rendering is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders this value as compact JSON (no whitespace, sorted keys,
    /// shortest-roundtrip floats). Non-finite numbers render as strings
    /// (`"inf"`, `"-inf"`, `"NaN"`) — JSON has no literal for them.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    let _ = write!(out, "\"{v}\"");
                }
            }
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object from `(key, value)` pairs.
pub fn obj<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Shorthand for a string value.
pub fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// Shorthand for a numeric value.
pub fn n(v: f64) -> Value {
    Value::Num(v)
}

/// An `Option<f64>` as number-or-null.
pub fn opt(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Num)
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Nesting bound: hostile input like `[[[[...` must not overflow the
/// parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.depth += 1;
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            // Duplicate keys: last one wins.
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.depth += 1;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Lone surrogates map to U+FFFD; the daemon
                            // never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.1,
            1.0 / 3.0,
            5.420_921_003_163_208e-5,
            f64::MIN_POSITIVE,
            -2.2e-308,
            9.878_887_654e300,
        ] {
            let text = Value::Num(v).render();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn renders_deterministically_with_sorted_keys() {
        let a = obj([("zeta", n(1.0)), ("alpha", s("x"))]);
        assert_eq!(a.render(), r#"{"alpha":"x","zeta":1}"#);
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = s("a\"b\\c\nd\u{1}");
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_hostile_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("nul").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth bound must trip");
    }

    #[test]
    fn non_finite_numbers_render_as_strings() {
        assert_eq!(n(f64::INFINITY).render(), "\"inf\"");
        assert_eq!(n(f64::NAN).render(), "\"NaN\"");
    }
}
