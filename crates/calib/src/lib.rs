//! SPICE-anchored calibration tables for the APE composition equations.
//!
//! The paper's closed-form L2/L3/L4 composition equations are fast but
//! only "within ±20 %" of simulation (Tables 2/3/5). This crate closes
//! that loop NEMESIS-style: audit sized designs with `ape-spice`, compute
//! est/sim ratios per composition equation and metric, and persist the
//! fitted correction factors as a [`Calibration`] table keyed by
//! technology fingerprint. `ape_core::graph` applies the corrections
//! inside estimation-graph nodes, folding the table's
//! [`fingerprint`](Calibration::fingerprint) into every memo key so
//! calibrated and uncalibrated results can never alias.
//!
//! A correction is a positive multiplicative `factor`, optionally shaped
//! by low-order response-surface `terms` in the equation's spec variables
//! (see [`ape_mos::eqid`]): the applied factor is
//! `factor · exp(Σ terms[i] · vars[i])`. The identity table (no entries)
//! is guaranteed bit-identical to uncalibrated estimation.
//!
//! Construction is validating — every path into a table
//! ([`Calibration::set`], [`Calibration::from_json`], [`fit`]) rejects
//! unknown equation ids, unknown metrics, non-finite or non-positive
//! factors, and wrong-arity term vectors with a typed [`CalibError`], so
//! a table that exists is a table that can be applied.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use ape_mos::eqid;
use ape_mos::fingerprint::Fingerprint;
use std::collections::BTreeMap;

/// Schema version of the persisted JSON form.
pub const CALIB_SCHEMA: u64 = 1;

/// The `kind` discriminator in the persisted JSON form.
pub const CALIB_KIND: &str = "ape-calibration";

/// Typed calibration errors. Every hostile input maps to one of these —
/// the calibration layer never panics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CalibError {
    /// The equation id is not in the [`eqid`] registry.
    UnknownEquation(String),
    /// The metric name is not in [`eqid::METRICS`].
    UnknownMetric {
        /// Equation the bad metric was attached to.
        equation: String,
        /// The unknown metric name.
        metric: String,
    },
    /// A correction factor was NaN, infinite, zero or negative.
    BadFactor {
        /// Equation of the offending entry.
        equation: String,
        /// Metric of the offending entry.
        metric: String,
        /// The rejected factor value.
        factor: f64,
    },
    /// A response-surface term was NaN or infinite.
    NonFiniteTerm {
        /// Equation of the offending entry.
        equation: String,
        /// Metric of the offending entry.
        metric: String,
        /// Index of the bad term.
        index: usize,
    },
    /// The term vector's length matches neither zero nor the equation's
    /// registered arity.
    WrongArity {
        /// Equation of the offending entry.
        equation: String,
        /// Metric of the offending entry.
        metric: String,
        /// The arity the registry expects.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
    /// Merging tables fitted for different technologies.
    TechnologyMismatch {
        /// Fingerprint of the receiving table's technology.
        expected: u64,
        /// Fingerprint carried by the incoming table.
        got: u64,
    },
    /// The persisted form failed to parse or was structurally invalid.
    Parse(String),
}

impl std::fmt::Display for CalibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibError::UnknownEquation(id) => write!(f, "unknown equation id `{id}`"),
            CalibError::UnknownMetric { equation, metric } => {
                write!(f, "unknown metric `{metric}` for equation `{equation}`")
            }
            CalibError::BadFactor {
                equation,
                metric,
                factor,
            } => write!(
                f,
                "factor for `{equation}`/`{metric}` must be finite and positive, got {factor}"
            ),
            CalibError::NonFiniteTerm {
                equation,
                metric,
                index,
            } => write!(f, "term {index} for `{equation}`/`{metric}` is not finite"),
            CalibError::WrongArity {
                equation,
                metric,
                expected,
                got,
            } => write!(
                f,
                "`{equation}`/`{metric}` takes {expected} response-surface terms, got {got}"
            ),
            CalibError::TechnologyMismatch { expected, got } => write!(
                f,
                "technology mismatch: table is for {got:016x}, expected {expected:016x}"
            ),
            CalibError::Parse(msg) => write!(f, "calibration parse error: {msg}"),
        }
    }
}

impl std::error::Error for CalibError {}

/// One fitted correction: a positive multiplicative factor plus optional
/// response-surface terms in the equation's spec variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    factor: f64,
    terms: Vec<f64>,
}

impl Correction {
    /// The constant multiplicative factor.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The response-surface coefficients (empty for a pure factor).
    #[must_use]
    pub fn terms(&self) -> &[f64] {
        &self.terms
    }

    /// Evaluates the applied factor at `vars`:
    /// `factor · exp(Σ terms[i] · vars[i])`.
    ///
    /// A caller supplying the wrong number of variables for a non-empty
    /// term vector gets NaN — the graph layer surfaces that as a typed
    /// non-finite error rather than silently mis-shaping the correction.
    #[must_use]
    pub fn apply(&self, vars: &[f64]) -> f64 {
        if self.terms.is_empty() {
            return self.factor;
        }
        if self.terms.len() != vars.len() {
            return f64::NAN;
        }
        let dot: f64 = self.terms.iter().zip(vars).map(|(t, v)| t * v).sum();
        self.factor * dot.exp()
    }
}

/// A per-technology table of composition-equation corrections.
///
/// Identity by default: a freshly created table has no entries and
/// [`factor`](Self::factor) returns `None` for every lookup, so applying
/// it is bit-identical to not applying anything.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    tech_fp: u64,
    label: String,
    entries: BTreeMap<(String, String), Correction>,
    fp: u64,
}

impl Calibration {
    /// Creates an empty (identity) table for the technology with
    /// fingerprint `tech_fp`.
    #[must_use]
    pub fn identity(tech_fp: u64, label: &str) -> Self {
        let mut c = Calibration {
            tech_fp,
            label: label.to_string(),
            entries: BTreeMap::new(),
            fp: 0,
        };
        c.fp = c.compute_fingerprint();
        c
    }

    /// Inserts (or replaces) the correction for `(equation, metric)`.
    ///
    /// # Errors
    ///
    /// Rejects unknown equations/metrics, non-finite or non-positive
    /// factors, non-finite terms, and term vectors whose length is
    /// neither zero nor the equation's registered arity.
    pub fn set(
        &mut self,
        equation: &str,
        metric: &str,
        factor: f64,
        terms: &[f64],
    ) -> Result<(), CalibError> {
        let eq = eqid::lookup(equation)
            .ok_or_else(|| CalibError::UnknownEquation(equation.to_string()))?;
        if !eqid::is_metric(metric) {
            return Err(CalibError::UnknownMetric {
                equation: equation.to_string(),
                metric: metric.to_string(),
            });
        }
        if !(factor.is_finite() && factor > 0.0) {
            return Err(CalibError::BadFactor {
                equation: equation.to_string(),
                metric: metric.to_string(),
                factor,
            });
        }
        if !terms.is_empty() && terms.len() != eq.arity() {
            return Err(CalibError::WrongArity {
                equation: equation.to_string(),
                metric: metric.to_string(),
                expected: eq.arity(),
                got: terms.len(),
            });
        }
        if let Some(index) = terms.iter().position(|t| !t.is_finite()) {
            return Err(CalibError::NonFiniteTerm {
                equation: equation.to_string(),
                metric: metric.to_string(),
                index,
            });
        }
        self.entries.insert(
            (equation.to_string(), metric.to_string()),
            Correction {
                factor,
                terms: terms.to_vec(),
            },
        );
        self.fp = self.compute_fingerprint();
        Ok(())
    }

    /// Fingerprint of the technology this table was fitted for.
    #[must_use]
    pub fn technology_fingerprint(&self) -> u64 {
        self.tech_fp
    }

    /// Content fingerprint of the whole table (technology, label and
    /// every entry, bit-exactly). Folds into estimation-graph memo keys.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Human-readable table label (provenance, not identity-bearing
    /// beyond its bytes folding into the fingerprint).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of corrections in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is the identity (no corrections).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The correction for `(equation, metric)`, if present.
    #[must_use]
    pub fn correction(&self, equation: &str, metric: &str) -> Option<&Correction> {
        self.entries
            .get(&(equation.to_string(), metric.to_string()))
    }

    /// The applied factor for `(equation, metric)` at `vars`, or `None`
    /// when the table holds no correction for that pair (identity —
    /// callers skip the multiplication entirely, preserving bit-identity).
    #[must_use]
    pub fn factor(&self, equation: &str, metric: &str, vars: &[f64]) -> Option<f64> {
        self.correction(equation, metric).map(|c| c.apply(vars))
    }

    /// Iterates entries in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &Correction)> {
        self.entries
            .iter()
            .map(|((e, m), c)| (e.as_str(), m.as_str(), c))
    }

    /// Merges `other`'s corrections into `self` (staged fitting: L2 pass,
    /// then L3, then L4). Later entries win on collision.
    ///
    /// # Errors
    ///
    /// [`CalibError::TechnologyMismatch`] when the tables were fitted for
    /// different technologies.
    pub fn merge(&mut self, other: &Calibration) -> Result<(), CalibError> {
        if other.tech_fp != self.tech_fp {
            return Err(CalibError::TechnologyMismatch {
                expected: self.tech_fp,
                got: other.tech_fp,
            });
        }
        for ((e, m), c) in &other.entries {
            self.entries.insert((e.clone(), m.clone()), c.clone());
        }
        self.fp = self.compute_fingerprint();
        Ok(())
    }

    fn compute_fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new()
            .str(CALIB_KIND)
            .u64(CALIB_SCHEMA)
            .u64(self.tech_fp)
            .str(&self.label)
            .u64(self.entries.len() as u64);
        for ((eq, metric), c) in &self.entries {
            f = f
                .str(eq)
                .str(metric)
                .f64(c.factor)
                .u64(c.terms.len() as u64);
            for t in &c.terms {
                f = f.f64(*t);
            }
        }
        f.finish()
    }

    /// The canonical persisted form (sorted keys, shortest-roundtrip
    /// floats — rendering then parsing recovers the table bit-exactly).
    #[must_use]
    pub fn to_json(&self) -> json::Value {
        let mut corrections: BTreeMap<String, BTreeMap<String, json::Value>> = BTreeMap::new();
        for ((eq, metric), c) in &self.entries {
            let entry = json::obj([
                ("factor", json::n(c.factor)),
                (
                    "terms",
                    json::Value::Arr(c.terms.iter().map(|t| json::n(*t)).collect()),
                ),
            ]);
            corrections
                .entry(eq.clone())
                .or_default()
                .insert(metric.clone(), entry);
        }
        json::obj([
            ("schema", json::n(CALIB_SCHEMA as f64)),
            ("kind", json::s(CALIB_KIND)),
            ("technology", json::s(&format!("{:016x}", self.tech_fp))),
            ("label", json::s(&self.label)),
            (
                "corrections",
                json::Value::Obj(
                    corrections
                        .into_iter()
                        .map(|(eq, metrics)| (eq, json::Value::Obj(metrics.into_iter().collect())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the canonical JSON string form.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a table from its JSON form, re-validating every entry.
    ///
    /// # Errors
    ///
    /// [`CalibError::Parse`] for structural problems; the same typed
    /// errors as [`set`](Self::set) for invalid entries.
    pub fn from_json(v: &json::Value) -> Result<Self, CalibError> {
        let schema = v
            .get("schema")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| CalibError::Parse("missing `schema`".to_string()))?;
        if schema != CALIB_SCHEMA as f64 {
            return Err(CalibError::Parse(format!(
                "unsupported schema {schema}, expected {CALIB_SCHEMA}"
            )));
        }
        let kind = v
            .get("kind")
            .and_then(json::Value::as_str)
            .ok_or_else(|| CalibError::Parse("missing `kind`".to_string()))?;
        if kind != CALIB_KIND {
            return Err(CalibError::Parse(format!(
                "kind `{kind}` is not `{CALIB_KIND}`"
            )));
        }
        let tech_hex = v
            .get("technology")
            .and_then(json::Value::as_str)
            .ok_or_else(|| CalibError::Parse("missing `technology`".to_string()))?;
        let tech_fp = u64::from_str_radix(tech_hex, 16)
            .map_err(|_| CalibError::Parse(format!("bad technology fingerprint `{tech_hex}`")))?;
        let label = v
            .get("label")
            .and_then(json::Value::as_str)
            .unwrap_or_default();
        let mut table = Calibration::identity(tech_fp, label);
        let corrections = match v.get("corrections") {
            None | Some(json::Value::Null) => return Ok(table),
            Some(json::Value::Obj(m)) => m,
            Some(_) => {
                return Err(CalibError::Parse(
                    "`corrections` must be an object".to_string(),
                ))
            }
        };
        for (eq, metrics) in corrections {
            let json::Value::Obj(metrics) = metrics else {
                return Err(CalibError::Parse(format!(
                    "corrections for `{eq}` must be an object"
                )));
            };
            for (metric, entry) in metrics {
                let factor = entry
                    .get("factor")
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| {
                        CalibError::Parse(format!("`{eq}`/`{metric}` is missing a numeric factor"))
                    })?;
                let terms: Vec<f64> = match entry.get("terms") {
                    None | Some(json::Value::Null) => Vec::new(),
                    Some(json::Value::Arr(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for (i, t) in items.iter().enumerate() {
                            out.push(t.as_f64().ok_or_else(|| {
                                CalibError::Parse(format!(
                                    "`{eq}`/`{metric}` term {i} is not a number"
                                ))
                            })?);
                        }
                        out
                    }
                    Some(_) => {
                        return Err(CalibError::Parse(format!(
                            "`{eq}`/`{metric}` terms must be an array"
                        )))
                    }
                };
                table.set(eq, metric, factor, &terms)?;
            }
        }
        Ok(table)
    }

    /// Parses the JSON string form.
    ///
    /// # Errors
    ///
    /// As [`from_json`](Self::from_json).
    pub fn parse(text: &str) -> Result<Self, CalibError> {
        let v = json::parse(text).map_err(CalibError::Parse)?;
        Self::from_json(&v)
    }
}

/// One est-vs-sim observation for the fitter.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Equation id from the [`eqid`] registry.
    pub equation: String,
    /// Metric name from [`eqid::METRICS`].
    pub metric: String,
    /// The estimator's value.
    pub est: f64,
    /// The simulator's value for the same sized design.
    pub sim: f64,
}

impl Sample {
    /// Convenience constructor.
    #[must_use]
    pub fn new(equation: &str, metric: &str, est: f64, sim: f64) -> Self {
        Sample {
            equation: equation.to_string(),
            metric: metric.to_string(),
            est,
            sim,
        }
    }
}

/// Metrics the fitter never emits corrections for, because they feed back
/// into design-selection logic (the op-amp attempt fold compares
/// `gate_area_m2` against the spec ceiling): correcting them would change
/// *which* design is produced, not just the reported estimate, breaking
/// the guarantee that a fitted table tightens est/sim error on the very
/// designs it was fitted on. Hand-authored tables may still target them.
pub const FIT_EXCLUDED_METRICS: &[&str] = &["gate_area_m2"];

/// Fits a constant-factor correction table from est/sim samples.
///
/// Per `(equation, metric)` group the fitter chooses the factor `f`
/// minimizing the worst relative error `max_i |f·est_i/sim_i − 1|`: with
/// ratios `r_i = sim_i/est_i` (magnitudes), the minimax solution is the
/// harmonic combination `f = 2·r_min·r_max / (r_min + r_max)`, which makes
/// the calibrated worst error `(r_max − r_min)/(r_max + r_min)` — never
/// worse than uncalibrated, and strictly better unless `f = 1` was
/// already optimal. Samples that are non-finite, zero, or whose est and
/// sim disagree in sign are skipped (no positive factor can help them),
/// as are metrics in [`FIT_EXCLUDED_METRICS`]. Near-identity factors are
/// dropped so the table stays sparse.
///
/// The fit is deterministic: grouping is sorted, and the result depends
/// only on the multiset of samples per group.
///
/// # Errors
///
/// Rejects samples naming unknown equations or metrics — the pipeline
/// constructs samples, so an unknown id is a bug, not data.
pub fn fit(tech_fp: u64, label: &str, samples: &[Sample]) -> Result<Calibration, CalibError> {
    let mut groups: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();
    for s in samples {
        if eqid::lookup(&s.equation).is_none() {
            return Err(CalibError::UnknownEquation(s.equation.clone()));
        }
        if !eqid::is_metric(&s.metric) {
            return Err(CalibError::UnknownMetric {
                equation: s.equation.clone(),
                metric: s.metric.clone(),
            });
        }
        if FIT_EXCLUDED_METRICS.contains(&s.metric.as_str()) {
            continue;
        }
        if !(s.est.is_finite() && s.sim.is_finite()) {
            continue;
        }
        if s.est == 0.0 || s.sim == 0.0 || (s.est < 0.0) != (s.sim < 0.0) {
            continue;
        }
        let r = s.sim.abs() / s.est.abs();
        if !(r.is_finite() && r > 0.0) {
            continue;
        }
        let entry = groups
            .entry((s.equation.clone(), s.metric.clone()))
            .or_insert((r, r));
        entry.0 = entry.0.min(r);
        entry.1 = entry.1.max(r);
    }
    let mut table = Calibration::identity(tech_fp, label);
    for ((eq, metric), (rmin, rmax)) in groups {
        let f = 2.0 * rmin * rmax / (rmin + rmax);
        if !(f.is_finite() && f > 0.0) || (f - 1.0).abs() <= 1e-12 {
            continue;
        }
        table.set(&eq, &metric, f, &[])?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_table_answers_none() {
        let t = Calibration::identity(42, "empty");
        assert!(t.is_empty());
        assert_eq!(t.factor("l2.diffpair", "dc_gain", &[]), None);
    }

    #[test]
    fn set_validates_everything() {
        let mut t = Calibration::identity(1, "v");
        assert!(matches!(
            t.set("l9.bogus", "dc_gain", 1.0, &[]),
            Err(CalibError::UnknownEquation(_))
        ));
        assert!(matches!(
            t.set("l2.diffpair", "dc-gain", 1.0, &[]),
            Err(CalibError::UnknownMetric { .. })
        ));
        for bad in [f64::NAN, f64::INFINITY, 0.0, -2.0] {
            assert!(matches!(
                t.set("l2.diffpair", "dc_gain", bad, &[]),
                Err(CalibError::BadFactor { .. })
            ));
        }
        assert!(matches!(
            t.set("l2.diffpair", "dc_gain", 1.1, &[0.1]),
            Err(CalibError::WrongArity {
                expected: 2,
                got: 1,
                ..
            })
        ));
        assert!(matches!(
            t.set("l2.diffpair", "dc_gain", 1.1, &[0.1, f64::NAN]),
            Err(CalibError::NonFiniteTerm { index: 1, .. })
        ));
        assert!(t.is_empty(), "failed sets must not leave entries behind");
        t.set("l2.diffpair", "dc_gain", 1.1, &[0.1, -0.2]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = Calibration::identity(7, "a");
        let empty_fp = a.fingerprint();
        a.set("l2.gain", "ugf_hz", 1.05, &[]).unwrap();
        assert_ne!(a.fingerprint(), empty_fp);
        let mut b = Calibration::identity(7, "a");
        b.set("l2.gain", "ugf_hz", 1.05, &[]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.set("l2.gain", "ugf_hz", 1.05 + 1e-15, &[]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint(), "bit-exact sensitivity");
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let mut t = Calibration::identity(0xDEAD_BEEF_0102_0304, "fit@seed1999");
        t.set("l2.diffpair", "dc_gain", 1.0 / 3.0, &[]).unwrap();
        t.set(
            "l3.opamp",
            "ugf_hz",
            1.234_567_890_123_456_7,
            &[0.01, -0.02],
        )
        .unwrap();
        let text = t.render();
        let back = Calibration::parse(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.fingerprint(), t.fingerprint());
        assert_eq!(back.render(), text, "canonical form is a fixed point");
    }

    #[test]
    fn hostile_json_is_typed_errors() {
        assert!(matches!(Calibration::parse("{"), Err(CalibError::Parse(_))));
        assert!(matches!(
            Calibration::parse(r#"{"schema":9,"kind":"ape-calibration","technology":"0"}"#),
            Err(CalibError::Parse(_))
        ));
        let bad_factor = r#"{"schema":1,"kind":"ape-calibration","technology":"7","label":"",
            "corrections":{"l2.gain":{"ugf_hz":{"factor":"NaN","terms":[]}}}}"#;
        assert!(Calibration::parse(bad_factor).is_err());
        let bad_arity = r#"{"schema":1,"kind":"ape-calibration","technology":"7","label":"",
            "corrections":{"l2.gain":{"ugf_hz":{"factor":1.1,"terms":[1,2,3]}}}}"#;
        assert!(matches!(
            Calibration::parse(bad_arity),
            Err(CalibError::WrongArity { .. })
        ));
        let bad_eq = r#"{"schema":1,"kind":"ape-calibration","technology":"7","label":"",
            "corrections":{"l7.warp":{"ugf_hz":{"factor":1.1,"terms":[]}}}}"#;
        assert!(matches!(
            Calibration::parse(bad_eq),
            Err(CalibError::UnknownEquation(_))
        ));
    }

    #[test]
    fn correction_apply_shapes() {
        let mut t = Calibration::identity(1, "");
        t.set("l2.gain", "ugf_hz", 2.0, &[]).unwrap();
        assert_eq!(t.factor("l2.gain", "ugf_hz", &[]), Some(2.0));
        // Extra vars are fine for a pure factor (terms empty).
        assert_eq!(t.factor("l2.gain", "ugf_hz", &[1.0, 2.0]), Some(2.0));
        t.set("l2.gain", "dc_gain", 1.5, &[0.0, 0.1]).unwrap();
        let f = t.factor("l2.gain", "dc_gain", &[100.0, 2.0]).unwrap();
        assert!((f - 1.5 * (0.2f64).exp()).abs() < 1e-12);
        // Arity mismatch at application time: NaN, caught by the graph.
        assert!(t.factor("l2.gain", "dc_gain", &[1.0]).unwrap().is_nan());
    }

    #[test]
    fn fit_is_minimax_and_never_worse() {
        // Ratios sim/est spanning [0.8, 1.25].
        let samples = vec![
            Sample::new("l2.diffpair", "dc_gain", 1.0, 0.8),
            Sample::new("l2.diffpair", "dc_gain", 2.0, 2.5),
            Sample::new("l2.diffpair", "dc_gain", -1.0, -1.0),
        ];
        let t = fit(123, "test", &samples).unwrap();
        let f = t.factor("l2.diffpair", "dc_gain", &[]).unwrap();
        let expect = 2.0 * 0.8 * 1.25 / (0.8 + 1.25);
        assert!((f - expect).abs() < 1e-12);
        let worst_before = samples
            .iter()
            .map(|s| (s.est / s.sim - 1.0).abs())
            .fold(0.0, f64::max);
        let worst_after = samples
            .iter()
            .map(|s| (f * s.est / s.sim - 1.0).abs())
            .fold(0.0, f64::max);
        assert!(
            worst_after < worst_before,
            "{worst_after} !< {worst_before}"
        );
    }

    #[test]
    fn fit_skips_hopeless_and_excluded_samples() {
        let samples = vec![
            Sample::new("l2.gain", "dc_gain", 1.0, -1.0), // sign flip
            Sample::new("l2.gain", "ugf_hz", f64::NAN, 1.0),
            Sample::new("l2.gain", "power_w", 1.0, 0.0),
            Sample::new("l2.gain", "gate_area_m2", 1.0, 2.0), // excluded
            Sample::new("l2.gain", "zout_ohm", 1.0, 1.0),     // identity
        ];
        let t = fit(5, "sparse", &samples).unwrap();
        assert!(t.is_empty(), "{:?}", t);
    }

    #[test]
    fn fit_rejects_unknown_ids() {
        assert!(matches!(
            fit(1, "", &[Sample::new("l9.x", "dc_gain", 1.0, 2.0)]),
            Err(CalibError::UnknownEquation(_))
        ));
        assert!(matches!(
            fit(1, "", &[Sample::new("l2.gain", "dcgain", 1.0, 2.0)]),
            Err(CalibError::UnknownMetric { .. })
        ));
    }

    #[test]
    fn merge_requires_matching_technology() {
        let mut a = Calibration::identity(1, "a");
        a.set("l2.gain", "dc_gain", 1.1, &[]).unwrap();
        let mut b = Calibration::identity(1, "b");
        b.set("l2.gain", "dc_gain", 1.2, &[]).unwrap();
        b.set("l3.opamp", "ugf_hz", 0.9, &[]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.factor("l2.gain", "dc_gain", &[]), Some(1.2));
        assert_eq!(a.len(), 2);
        let c = Calibration::identity(2, "c");
        assert!(matches!(
            a.merge(&c),
            Err(CalibError::TechnologyMismatch { .. })
        ));
    }
}
