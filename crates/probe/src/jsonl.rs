//! Streaming sink: one JSON object per event, newline-delimited, written
//! to stderr or a file for offline analysis (no serde — the event grammar
//! is tiny and hand-rolled).

use crate::trace::escape;
use crate::{Sink, SpanEvent};
use std::fs::File;
use std::io::{BufWriter, Stderr, Write};
use std::path::Path;
use std::sync::Mutex;

enum Target {
    Stderr(Stderr),
    File(BufWriter<File>),
    Buffer(Vec<u8>),
}

impl Target {
    fn write_line(&mut self, line: &str) {
        let _ = match self {
            Target::Stderr(s) => writeln!(s, "{line}"),
            Target::File(f) => writeln!(f, "{line}"),
            Target::Buffer(b) => writeln!(b, "{line}"),
        };
    }

    fn flush(&mut self) {
        let _ = match self {
            Target::Stderr(s) => s.flush(),
            Target::File(f) => f.flush(),
            Target::Buffer(_) => Ok(()),
        };
    }
}

/// A [`Sink`] that emits each event as one JSON line:
///
/// ```text
/// {"type":"span","name":"ape.l3.opamp","id":7,"parent":3,"tid":0,"depth":1,"start_ns":12000,"ns":81234}
/// {"type":"counter","name":"ape.cache.hit","delta":4}
/// {"type":"value","name":"anneal.accept_ratio","value":0.44}
/// ```
///
/// Non-finite values serialise as `null`, as does an absent span parent.
///
/// Output is flushed by [`Sink::flush_events`] (which [`crate::finish`],
/// [`crate::uninstall`] and the panic hook all call) *and* on drop, so a
/// scope-local sink never loses buffered lines.
pub struct JsonLinesSink {
    target: Mutex<Target>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Streams events to stderr.
    pub fn to_stderr() -> Self {
        JsonLinesSink {
            target: Mutex::new(Target::Stderr(std::io::stderr())),
        }
    }

    /// Streams events to the file at `path` (created/truncated).
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` error.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonLinesSink {
            target: Mutex::new(Target::File(BufWriter::new(File::create(path)?))),
        })
    }

    /// Collects events into an in-memory buffer (for tests and embedding).
    pub fn to_buffer() -> Self {
        JsonLinesSink {
            target: Mutex::new(Target::Buffer(Vec::new())),
        }
    }

    /// The buffered output so far, for sinks built with
    /// [`JsonLinesSink::to_buffer`] (empty otherwise).
    pub fn buffer_contents(&self) -> String {
        let guard = self.target.lock().unwrap_or_else(|e| e.into_inner());
        match &*guard {
            Target::Buffer(b) => String::from_utf8_lossy(b).into_owned(),
            _ => String::new(),
        }
    }

    fn emit(&self, line: &str) {
        let mut guard = self.target.lock().unwrap_or_else(|e| e.into_inner());
        guard.write_line(line);
    }
}

impl Drop for JsonLinesSink {
    /// Flush-on-drop guard: a sink torn down without an explicit
    /// [`crate::finish`] still leaves complete JSONL lines behind.
    fn drop(&mut self) {
        self.flush_events();
    }
}

/// Serialises an `f64` as a JSON number (`null` when non-finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` on f64 may print `5` for 5.0, which is still a valid JSON
        // number.
        format!("{v}")
    } else {
        "null".into()
    }
}

impl Sink for JsonLinesSink {
    fn on_span(&self, ev: &SpanEvent) {
        let parent = match ev.parent {
            Some(p) => p.to_string(),
            None => "null".into(),
        };
        self.emit(&format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{parent},\"tid\":{},\"depth\":{},\"start_ns\":{},\"ns\":{}}}",
            escape(ev.name),
            ev.id,
            ev.tid,
            ev.depth,
            ev.start_ns,
            ev.dur_ns,
        ));
    }

    fn on_counter(&self, name: &'static str, delta: u64) {
        self.emit(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
            escape(name)
        ));
    }

    fn on_value(&self, name: &'static str, v: f64) {
        self.emit(&format!(
            "{{\"type\":\"value\",\"name\":\"{}\",\"value\":{}}}",
            escape(name),
            json_f64(v)
        ));
    }

    fn on_gauge(&self, name: &'static str, v: f64) {
        self.emit(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape(name),
            json_f64(v)
        ));
    }

    fn flush_events(&self) {
        let mut guard = self.target.lock().unwrap_or_else(|e| e.into_inner());
        guard.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_one_per_line() {
        let s = JsonLinesSink::to_buffer();
        s.on_span(&SpanEvent {
            name: "a.b",
            id: 9,
            parent: Some(4),
            tid: 1,
            depth: 2,
            start_ns: 777,
            dur_ns: 12345,
        });
        s.on_counter("c", 7);
        s.on_value("v", 0.25);
        s.on_value("nan", f64::NAN);
        s.on_gauge("g", 3.0);
        let out = s.buffer_contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "{\"type\":\"span\",\"name\":\"a.b\",\"id\":9,\"parent\":4,\"tid\":1,\"depth\":2,\"start_ns\":777,\"ns\":12345}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"counter\",\"name\":\"c\",\"delta\":7}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"value\",\"name\":\"v\",\"value\":0.25}"
        );
        assert_eq!(
            lines[3],
            "{\"type\":\"value\",\"name\":\"nan\",\"value\":null}"
        );
        assert_eq!(lines[4], "{\"type\":\"gauge\",\"name\":\"g\",\"value\":3}");
    }

    #[test]
    fn root_span_parent_serializes_null() {
        let s = JsonLinesSink::to_buffer();
        s.on_span(&SpanEvent {
            name: "root",
            id: 1,
            parent: None,
            tid: 0,
            depth: 0,
            start_ns: 0,
            dur_ns: 10,
        });
        assert!(s.buffer_contents().contains("\"parent\":null"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
