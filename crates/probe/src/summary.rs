//! Aggregating sink: a thin event adapter over the lock-free [`Registry`],
//! rendered as one human-readable report at the end of a run.
//!
//! Before the registry existed this sink serialised every event through a
//! `Mutex<BTreeMap<..>>`; hot paths on eight workers contended on that one
//! lock. Now [`SummarySink`] owns a [`Registry`] and every event lands in
//! padded atomics — the sink itself is only a *reader*, taking snapshots
//! when a report or accessor is asked for.

use crate::registry::{GaugeSnapshot, HistogramSnapshot, Registry, SpanSnapshot};
use crate::{fmt_nanos, render_rows, Sink, SpanEvent};
use std::collections::BTreeMap;

/// Counter totals keyed by name.
pub type CounterTotals = BTreeMap<String, u64>;

/// Aggregated statistics of one span name, derived from the registry's
/// duration histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAgg {
    /// Completed spans observed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all spans.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Smallest nesting depth at which the span was observed.
    pub min_depth: usize,
    /// Median span duration, nanoseconds (log-linear bucket resolution).
    pub p50_ns: u64,
    /// 90th-percentile span duration, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile span duration, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile span duration, nanoseconds.
    pub p999_ns: u64,
}

impl SpanAgg {
    /// Mean span duration, nanoseconds (0 with no observations).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total_ns as f64 / self.count as f64) as u64
        }
    }

    fn from_snapshot(s: &SpanSnapshot) -> Self {
        let d = &s.durations;
        SpanAgg {
            count: d.count,
            total_ns: d.sum.max(0.0) as u64,
            max_ns: if d.count == 0 {
                0
            } else {
                d.max.max(0.0) as u64
            },
            min_depth: s.min_depth,
            p50_ns: d.p50().max(0.0) as u64,
            p90_ns: d.p90().max(0.0) as u64,
            p99_ns: d.p99().max(0.0) as u64,
            p999_ns: d.p999().max(0.0) as u64,
        }
    }
}

/// A [`Sink`] that aggregates all events into a lock-free [`Registry`] and
/// renders them as one aligned report.
///
/// # Example
///
/// ```
/// use ape_probe::{Sink, SummarySink};
/// let s = SummarySink::new();
/// s.on_counter("hits", 2);
/// s.on_counter("hits", 3);
/// assert_eq!(s.counters()["hits"], 5);
/// ```
#[derive(Debug, Default)]
pub struct SummarySink {
    registry: Registry,
}

impl SummarySink {
    /// Creates an empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry every event is aggregated into. Hand this to
    /// [`render_prometheus`](crate::render_prometheus) (after
    /// [`Registry::snapshot`]) to expose the run as a `/metrics` payload.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the span aggregates.
    pub fn spans(&self) -> BTreeMap<String, SpanAgg> {
        self.registry
            .snapshot()
            .spans
            .iter()
            .map(|(name, s)| (name.clone(), SpanAgg::from_snapshot(s)))
            .collect()
    }

    /// Snapshot of the counter totals.
    pub fn counters(&self) -> CounterTotals {
        self.registry.snapshot().counters
    }

    /// Snapshot of the value histograms.
    pub fn values(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.registry.snapshot().values
    }

    /// Snapshot of the gauge aggregates.
    pub fn gauges(&self) -> BTreeMap<String, GaugeSnapshot> {
        self.registry.snapshot().gauges
    }

    /// Renders the aggregated report.
    pub fn report(&self) -> String {
        let snap = self.registry.snapshot();
        let mut out = String::from("=== ape-probe summary ===\n");
        if !snap.spans.is_empty() {
            out.push_str("spans\n");
            let rows: Vec<Vec<String>> = snap
                .spans
                .iter()
                .map(|(name, s)| {
                    let a = SpanAgg::from_snapshot(s);
                    vec![
                        format!("{}{}", "  ".repeat(a.min_depth.min(16)), name),
                        a.count.to_string(),
                        fmt_nanos(a.total_ns),
                        fmt_nanos(a.mean_ns()),
                        fmt_nanos(a.p50_ns),
                        fmt_nanos(a.p99_ns),
                        fmt_nanos(a.max_ns),
                    ]
                })
                .collect();
            render_rows(
                &mut out,
                &["name", "count", "total", "mean", "p50", "p99", "max"],
                &rows,
            );
        }
        if !snap.counters.is_empty() {
            out.push_str("counters\n");
            let rows: Vec<Vec<String>> = snap
                .counters
                .iter()
                .map(|(name, v)| vec![name.clone(), v.to_string()])
                .collect();
            render_rows(&mut out, &["name", "total"], &rows);
        }
        if !snap.values.is_empty() {
            out.push_str("values\n");
            let rows: Vec<Vec<String>> = snap
                .values
                .iter()
                .map(|(name, h)| {
                    vec![
                        name.clone(),
                        h.count.to_string(),
                        format!("{:.4}", h.mean()),
                        format!("{:.4}", h.p50()),
                        format!("{:.4}", h.p99()),
                        format!("{:.4}", h.min),
                        format!("{:.4}", h.max),
                    ]
                })
                .collect();
            render_rows(
                &mut out,
                &["name", "count", "mean", "p50", "p99", "min", "max"],
                &rows,
            );
        }
        if !snap.gauges.is_empty() {
            out.push_str("gauges\n");
            let rows: Vec<Vec<String>> = snap
                .gauges
                .iter()
                .map(|(name, g)| {
                    vec![
                        name.clone(),
                        g.count.to_string(),
                        format!("{:.1}", g.last),
                        format!("{:.1}", g.min),
                        format!("{:.1}", g.max),
                    ]
                })
                .collect();
            render_rows(&mut out, &["name", "samples", "last", "min", "max"], &rows);
        }
        if snap.spans.is_empty()
            && snap.counters.is_empty()
            && snap.values.is_empty()
            && snap.gauges.is_empty()
        {
            out.push_str("(no events recorded)\n");
        }
        out
    }
}

impl Sink for SummarySink {
    fn on_span(&self, ev: &SpanEvent) {
        self.registry.span_record(ev.name, ev.depth, ev.dur_ns);
    }

    fn on_counter(&self, name: &'static str, delta: u64) {
        self.registry.counter_add(name, delta);
    }

    fn on_value(&self, name: &'static str, v: f64) {
        self.registry.value_record(name, v);
    }

    fn on_gauge(&self, name: &'static str, v: f64) {
        self.registry.gauge_set(name, v);
    }

    fn render_report(&self) -> Option<String> {
        Some(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, depth: usize, ns: u64) -> SpanEvent {
        SpanEvent {
            name,
            id: 1,
            parent: None,
            tid: 0,
            depth,
            start_ns: 0,
            dur_ns: ns,
        }
    }

    #[test]
    fn span_aggregation() {
        let s = SummarySink::new();
        s.on_span(&ev("a", 1, 100));
        s.on_span(&ev("a", 2, 300));
        s.on_span(&ev("b", 0, 50));
        let spans = s.spans();
        assert_eq!(spans["a"].count, 2);
        assert_eq!(spans["a"].total_ns, 400);
        assert_eq!(spans["a"].mean_ns(), 200);
        assert_eq!(spans["a"].max_ns, 300);
        assert_eq!(spans["a"].min_depth, 1);
        assert_eq!(spans["b"].count, 1);
        // Quantiles resolve to within the log-linear bucket width.
        let p50 = spans["a"].p50_ns as f64;
        assert!((90.0..=330.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn counter_aggregation() {
        let s = SummarySink::new();
        s.on_counter("x", 1);
        s.on_counter("x", 41);
        s.on_counter("y", 7);
        let c = s.counters();
        assert_eq!(c["x"], 42);
        assert_eq!(c["y"], 7);
    }

    #[test]
    fn value_aggregation_and_quantiles() {
        let s = SummarySink::new();
        for v in [0.5, 1.5, 2.5, 250.0] {
            s.on_value("v", v);
        }
        let v = &s.values()["v"];
        assert_eq!(v.count, 4);
        assert!((v.mean() - 63.625).abs() < 1e-12);
        assert_eq!(v.min, 0.5);
        assert_eq!(v.max, 250.0);
        let p50 = v.p50();
        assert!(p50 / 1.5 < 2.0 && 1.5 / p50 < 2.0, "p50 {p50}");
        assert!((v.p999() - 250.0).abs() / 250.0 < 0.1);
    }

    #[test]
    fn report_contains_all_sections() {
        let s = SummarySink::new();
        s.on_span(&ev("spans.demo", 0, 1_000));
        s.on_counter("counters.demo", 9);
        s.on_value("values.demo", 3.25);
        let r = s.report();
        assert!(r.contains("spans.demo"));
        assert!(r.contains("counters.demo"));
        assert!(r.contains("values.demo"));
        assert!(r.contains("p99"));
        assert!(r.contains("=== ape-probe summary ==="));
    }

    #[test]
    fn empty_report_says_so() {
        assert!(SummarySink::new().report().contains("no events"));
    }

    #[test]
    fn gauge_tracks_last_and_envelope() {
        let s = SummarySink::new();
        for v in [3.0, 9.0, 1.0, 4.0] {
            s.on_gauge("depth", v);
        }
        let g = s.gauges()["depth"];
        assert_eq!(g.count, 4);
        assert_eq!(g.last, 4.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 9.0);
        assert!(s.report().contains("gauges"));
        assert!(s.report().contains("depth"));
    }
}
