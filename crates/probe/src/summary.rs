//! Aggregating sink: everything collapses to per-name statistics rendered
//! as one human-readable report at the end of a run.

use crate::{fmt_nanos, render_rows, Sink};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log10 histogram buckets kept per value series.
pub const VALUE_BUCKETS: usize = 25;

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAgg {
    /// Completed spans observed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all spans.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Smallest nesting depth at which the span was observed.
    pub min_depth: usize,
}

impl SpanAgg {
    /// Mean span duration, nanoseconds (0 with no observations).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregated statistics of one value series, including a log10-bucketed
/// magnitude histogram: bucket `i` counts observations with
/// `10^(i-12) <= |v| < 10^(i-11)` (bucket 0 also holds anything smaller,
/// the last bucket anything larger; zero lands in bucket 0).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueAgg {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Log10 magnitude histogram (see type docs).
    pub buckets: [u64; VALUE_BUCKETS],
}

impl Default for ValueAgg {
    fn default() -> Self {
        ValueAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; VALUE_BUCKETS],
        }
    }
}

impl ValueAgg {
    /// Mean of the observations (0 with none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }
}

/// Histogram bucket index for a value (log10 magnitude, offset +12).
pub fn bucket_of(v: f64) -> usize {
    let a = v.abs();
    if !(a.is_finite()) || a <= 0.0 {
        return 0;
    }
    let idx = a.log10().floor() + 12.0;
    idx.clamp(0.0, (VALUE_BUCKETS - 1) as f64) as usize
}

/// Counter totals keyed by name.
pub type CounterTotals = BTreeMap<&'static str, u64>;

/// Aggregated statistics of one gauge series: the last sampled level plus
/// the envelope it moved in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeAgg {
    /// Samples recorded.
    pub count: u64,
    /// Most recent sample.
    pub last: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Default for GaugeAgg {
    fn default() -> Self {
        GaugeAgg {
            count: 0,
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl GaugeAgg {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

#[derive(Debug, Default)]
struct State {
    spans: BTreeMap<&'static str, SpanAgg>,
    counters: CounterTotals,
    values: BTreeMap<&'static str, ValueAgg>,
    gauges: BTreeMap<&'static str, GaugeAgg>,
}

/// A [`Sink`] that aggregates all events into per-name statistics and
/// renders them as one aligned report.
///
/// # Example
///
/// ```
/// use ape_probe::{Sink, SummarySink};
/// let s = SummarySink::new();
/// s.on_counter("hits", 2);
/// s.on_counter("hits", 3);
/// assert_eq!(s.counters()["hits"], 5);
/// ```
#[derive(Debug, Default)]
pub struct SummarySink {
    state: Mutex<State>,
}

impl SummarySink {
    /// Creates an empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of the span aggregates.
    pub fn spans(&self) -> BTreeMap<&'static str, SpanAgg> {
        self.lock().spans.clone()
    }

    /// Snapshot of the counter totals.
    pub fn counters(&self) -> CounterTotals {
        self.lock().counters.clone()
    }

    /// Snapshot of the value aggregates.
    pub fn values(&self) -> BTreeMap<&'static str, ValueAgg> {
        self.lock().values.clone()
    }

    /// Snapshot of the gauge aggregates.
    pub fn gauges(&self) -> BTreeMap<&'static str, GaugeAgg> {
        self.lock().gauges.clone()
    }

    /// Renders the aggregated report.
    pub fn report(&self) -> String {
        let st = self.lock();
        let mut out = String::from("=== ape-probe summary ===\n");
        if !st.spans.is_empty() {
            out.push_str("spans\n");
            let rows: Vec<Vec<String>> = st
                .spans
                .iter()
                .map(|(name, a)| {
                    vec![
                        format!("{}{}", "  ".repeat(a.min_depth), name),
                        a.count.to_string(),
                        fmt_nanos(a.total_ns),
                        fmt_nanos(a.mean_ns()),
                        fmt_nanos(a.max_ns),
                    ]
                })
                .collect();
            render_rows(&mut out, &["name", "count", "total", "mean", "max"], &rows);
        }
        if !st.counters.is_empty() {
            out.push_str("counters\n");
            let rows: Vec<Vec<String>> = st
                .counters
                .iter()
                .map(|(name, v)| vec![name.to_string(), v.to_string()])
                .collect();
            render_rows(&mut out, &["name", "total"], &rows);
        }
        if !st.values.is_empty() {
            out.push_str("values\n");
            let rows: Vec<Vec<String>> = st
                .values
                .iter()
                .map(|(name, a)| {
                    vec![
                        name.to_string(),
                        a.count.to_string(),
                        format!("{:.4}", a.mean()),
                        format!("{:.4}", a.min),
                        format!("{:.4}", a.max),
                    ]
                })
                .collect();
            render_rows(&mut out, &["name", "count", "mean", "min", "max"], &rows);
        }
        if !st.gauges.is_empty() {
            out.push_str("gauges\n");
            let rows: Vec<Vec<String>> = st
                .gauges
                .iter()
                .map(|(name, a)| {
                    vec![
                        name.to_string(),
                        a.count.to_string(),
                        format!("{:.1}", a.last),
                        format!("{:.1}", a.min),
                        format!("{:.1}", a.max),
                    ]
                })
                .collect();
            render_rows(&mut out, &["name", "samples", "last", "min", "max"], &rows);
        }
        if st.spans.is_empty()
            && st.counters.is_empty()
            && st.values.is_empty()
            && st.gauges.is_empty()
        {
            out.push_str("(no events recorded)\n");
        }
        out
    }
}

impl Sink for SummarySink {
    fn on_span(&self, name: &'static str, depth: usize, nanos: u64) {
        let mut st = self.lock();
        let a = st.spans.entry(name).or_insert(SpanAgg {
            min_depth: usize::MAX,
            ..SpanAgg::default()
        });
        a.count += 1;
        a.total_ns = a.total_ns.saturating_add(nanos);
        a.max_ns = a.max_ns.max(nanos);
        a.min_depth = a.min_depth.min(depth);
    }

    fn on_counter(&self, name: &'static str, delta: u64) {
        let mut st = self.lock();
        *st.counters.entry(name).or_insert(0) += delta;
    }

    fn on_value(&self, name: &'static str, v: f64) {
        let mut st = self.lock();
        st.values.entry(name).or_default().record(v);
    }

    fn on_gauge(&self, name: &'static str, v: f64) {
        let mut st = self.lock();
        st.gauges.entry(name).or_default().record(v);
    }

    fn render_report(&self) -> Option<String> {
        Some(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_aggregation() {
        let s = SummarySink::new();
        s.on_span("a", 1, 100);
        s.on_span("a", 2, 300);
        s.on_span("b", 0, 50);
        let spans = s.spans();
        assert_eq!(spans["a"].count, 2);
        assert_eq!(spans["a"].total_ns, 400);
        assert_eq!(spans["a"].mean_ns(), 200);
        assert_eq!(spans["a"].max_ns, 300);
        assert_eq!(spans["a"].min_depth, 1);
        assert_eq!(spans["b"].count, 1);
    }

    #[test]
    fn counter_aggregation() {
        let s = SummarySink::new();
        s.on_counter("x", 1);
        s.on_counter("x", 41);
        s.on_counter("y", 7);
        let c = s.counters();
        assert_eq!(c["x"], 42);
        assert_eq!(c["y"], 7);
    }

    #[test]
    fn value_aggregation_and_histogram() {
        let s = SummarySink::new();
        for v in [0.5, 1.5, 2.5, 250.0] {
            s.on_value("v", v);
        }
        let v = &s.values()["v"];
        assert_eq!(v.count, 4);
        assert!((v.mean() - 63.625).abs() < 1e-12);
        assert_eq!(v.min, 0.5);
        assert_eq!(v.max, 250.0);
        // 0.5 → bucket 11; 1.5 and 2.5 → bucket 12; 250 → bucket 14.
        assert_eq!(v.buckets[11], 1);
        assert_eq!(v.buckets[12], 2);
        assert_eq!(v.buckets[14], 1);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(1e-30), 0);
        assert_eq!(bucket_of(1.0), 12);
        assert_eq!(bucket_of(1e30), VALUE_BUCKETS - 1);
    }

    #[test]
    fn report_contains_all_sections() {
        let s = SummarySink::new();
        s.on_span("spans.demo", 0, 1_000);
        s.on_counter("counters.demo", 9);
        s.on_value("values.demo", 3.25);
        let r = s.report();
        assert!(r.contains("spans.demo"));
        assert!(r.contains("counters.demo"));
        assert!(r.contains("values.demo"));
        assert!(r.contains("=== ape-probe summary ==="));
    }

    #[test]
    fn empty_report_says_so() {
        assert!(SummarySink::new().report().contains("no events"));
    }

    #[test]
    fn gauge_tracks_last_and_envelope() {
        let s = SummarySink::new();
        for v in [3.0, 9.0, 1.0, 4.0] {
            s.on_gauge("depth", v);
        }
        let g = s.gauges()["depth"];
        assert_eq!(g.count, 4);
        assert_eq!(g.last, 4.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 9.0);
        assert!(s.report().contains("gauges"));
        assert!(s.report().contains("depth"));
    }
}
