//! The lock-free metrics registry: sharded atomic counters, gauges, and
//! log-linear quantile histograms, addressable by static name.
//!
//! The registry replaces the mutexed aggregation maps the old
//! [`SummarySink`](crate::SummarySink) carried: hot paths (graph node
//! lookups, sparse refactorisation, farm dispatch) update padded atomics
//! and never block each other. The only locks are sharded `RwLock`s around
//! the name → metric maps, taken once per *(thread, name)* pair: every
//! thread memoizes the `Arc` handles it has resolved, so the steady-state
//! record path is a thread-local hash lookup plus one relaxed atomic RMW.
//!
//! Layout:
//!
//! * [`Counter`] — monotonic total, striped over 8 cache-line-padded
//!   atomic cells so concurrent increments from different threads do not
//!   bounce one cache line;
//! * [`Gauge`] — last/min/max/count of an instantaneous level;
//! * [`Histogram`] — log-linear (HDR-style) distribution with 8 linear
//!   sub-buckets per power of two, yielding p50/p90/p99/p999 with a
//!   relative error bound of 2^(1/8) ≈ 9 % — far inside the ≤ 2× bound
//!   the old log10 bucket means could not offer at all;
//! * span series — a [`Histogram`] of durations plus the minimum nesting
//!   depth, fed by [`SpanEvent`](crate::SpanEvent)s.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Linear sub-buckets per power of two (as a bit count): 2^3 = 8.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest biased f64 exponent with its own buckets (2^-40 ≈ 9.1e-13):
/// anything positive but smaller lands in the underflow bucket.
const EXP_MIN: u64 = 1023 - 40;
/// Largest biased f64 exponent with its own buckets (2^63 ≈ 9.2e18).
const EXP_MAX: u64 = 1023 + 63;
/// Total bucket count: underflow + octaves*subs + overflow.
const NBUCKETS: usize = ((EXP_MAX - EXP_MIN + 1) as usize) * SUBS + 2;

/// Cache-line-padded atomic cell, so striped counters do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// Stripes per [`Counter`].
const STRIPES: usize = 8;

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_INDEX: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-thread index (0, 1, 2, …) in assignment order; also
/// used as the `tid` of [`SpanEvent`](crate::SpanEvent)s.
pub fn thread_index() -> u64 {
    THREAD_INDEX.with(|t| *t)
}

/// A monotonic counter striped over cache-line-padded atomic cells:
/// concurrent `add`s from different threads usually hit different lines.
#[derive(Debug, Default)]
pub struct Counter {
    cells: [PaddedU64; STRIPES],
}

impl Counter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to this thread's stripe (relaxed).
    #[inline]
    pub fn add(&self, delta: u64) {
        let stripe = (thread_index() as usize) % STRIPES;
        self.cells[stripe].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sum over all stripes (racy snapshot, monotone per stripe).
    pub fn total(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// Atomically folds `v` into the f64 stored (as bits) in `cell` with `f`.
fn atomic_f64_update(cell: &AtomicU64, v: f64, f: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur), v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// An instantaneous level: the last sample is the headline statistic, with
/// the min/max envelope and the sample count alongside.
#[derive(Debug)]
pub struct Gauge {
    count: AtomicU64,
    last: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            count: AtomicU64::new(0),
            last: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Gauge {
    /// An empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records sample `v` (NaN samples are dropped).
    #[inline]
    pub fn set(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.last.store(v.to_bits(), Ordering::Relaxed);
        atomic_f64_update(&self.min, v, f64::min);
        atomic_f64_update(&self.max, v, f64::max);
    }

    /// Racy snapshot of the gauge.
    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            count: self.count.load(Ordering::Relaxed),
            last: f64::from_bits(self.last.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Gauge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Most recent sample.
    pub last: f64,
    /// Smallest sample (`+inf` with no samples).
    pub min: f64,
    /// Largest sample (`-inf` with no samples).
    pub max: f64,
}

/// Bucket index of a finite observation: underflow (0), one of the
/// log-linear buckets, or overflow (`NBUCKETS - 1`). Zero and negative
/// observations land in the underflow bucket.
#[inline]
fn bucket_index(v: f64) -> usize {
    // NaN, zero, and negatives all land in the underflow bucket.
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    if exp < EXP_MIN {
        return 0;
    }
    if exp > EXP_MAX {
        return NBUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    ((exp - EXP_MIN) as usize) * SUBS + sub + 1
}

/// Midpoint of bucket `idx` (1-based within the log-linear range).
fn bucket_mid(idx: usize) -> f64 {
    let k = idx - 1;
    let exp = (EXP_MIN as i64) + (k / SUBS) as i64 - 1023;
    let sub = (k % SUBS) as f64;
    let scale = (exp as f64).exp2();
    scale * (1.0 + (sub + 0.5) / SUBS as f64)
}

/// A log-linear (HDR-style) histogram over positive magnitudes: 8 linear
/// sub-buckets per power of two from 2^-40 up to 2^64, so every recorded
/// value is represented by its bucket midpoint with relative error below
/// 1/16. Zero and negative values are counted in the underflow bucket but
/// still tracked exactly by `min`/`max`/`sum`.
///
/// All updates are relaxed atomics — safe and non-blocking from any number
/// of threads.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: buckets.into_boxed_slice(),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records observation `v` (NaN observations are dropped).
    #[inline]
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum, v, |acc, x| acc + x);
        atomic_f64_update(&self.min, v, f64::min);
        atomic_f64_update(&self.max, v, f64::max);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Racy snapshot of the distribution (only non-empty buckets kept).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`], answering quantile queries.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+inf` with none).
    pub min: f64,
    /// Largest observation (`-inf` with none).
    pub max: f64,
    /// Non-empty buckets as `(bucket index, count)` pairs in index order.
    buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (for default-constructed report rows).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }

    /// Mean of the observations (0 with none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the bucket
    /// holding that rank, clamped into the exact `[min, max]` envelope.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let mid = if idx == 0 {
                    self.min
                } else if idx == NBUCKETS - 1 {
                    self.max
                } else {
                    bucket_mid(idx)
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// p90 shorthand.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// p999 shorthand.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// Per-span-name statistics: a duration histogram plus the minimum nesting
/// depth the span was observed at.
#[derive(Debug, Default)]
pub struct SpanStat {
    /// Distribution of span durations, nanoseconds.
    pub durations: Histogram,
    min_depth: AtomicUsize,
}

impl SpanStat {
    fn new() -> Self {
        SpanStat {
            durations: Histogram::new(),
            min_depth: AtomicUsize::new(usize::MAX),
        }
    }

    /// Records one completed span.
    pub fn record(&self, depth: usize, dur_ns: u64) {
        self.durations.record(dur_ns as f64);
        self.min_depth.fetch_min(depth, Ordering::Relaxed);
    }

    /// Racy snapshot.
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            durations: self.durations.snapshot(),
            min_depth: self.min_depth.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a span series.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Distribution of durations, nanoseconds.
    pub durations: HistogramSnapshot,
    /// Smallest nesting depth observed (`usize::MAX` with no spans).
    pub min_depth: usize,
}

/// Shards per name → metric map.
const SHARDS: usize = 8;

/// FNV-1a over the name bytes, for shard selection.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// One metric family: a name-sharded map of `Arc<T>` handles.
#[derive(Debug)]
struct Family<T> {
    shards: [RwLock<HashMap<&'static str, Arc<T>>>; SHARDS],
}

impl<T> Default for Family<T> {
    fn default() -> Self {
        Family {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }
}

impl<T> Family<T> {
    fn get_or_insert(&self, name: &'static str, make: impl FnOnce() -> T) -> Arc<T> {
        let shard = &self.shards[shard_of(name)];
        if let Some(hit) = shard
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
        {
            return hit;
        }
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name).or_insert_with(|| Arc::new(make())).clone()
    }

    fn snapshot_with<S>(&self, f: impl Fn(&T) -> S) -> BTreeMap<String, S> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (name, m) in shard.read().unwrap_or_else(|e| e.into_inner()).iter() {
                out.insert((*name).to_string(), f(m));
            }
        }
        out
    }
}

static NEXT_REGISTRY: AtomicU64 = AtomicU64::new(0);

/// Entries allowed in each thread-local handle cache before it is cleared
/// (a safety valve against unbounded dynamic name sets).
const TL_CACHE_CAP: usize = 1024;

thread_local! {
    static TL_COUNTERS: std::cell::RefCell<HashMap<(u64, usize), Arc<Counter>>> =
        std::cell::RefCell::new(HashMap::new());
    static TL_GAUGES: std::cell::RefCell<HashMap<(u64, usize), Arc<Gauge>>> =
        std::cell::RefCell::new(HashMap::new());
    static TL_VALUES: std::cell::RefCell<HashMap<(u64, usize), Arc<Histogram>>> =
        std::cell::RefCell::new(HashMap::new());
    static TL_SPANS: std::cell::RefCell<HashMap<(u64, usize), Arc<SpanStat>>> =
        std::cell::RefCell::new(HashMap::new());
}

/// Resolves a metric handle through a thread-local memo so the steady-state
/// record path takes no lock at all.
macro_rules! cached_handle {
    ($cache:ident, $registry:expr, $family:expr, $name:expr, $make:expr) => {{
        let key = ($registry.id, $name.as_ptr() as usize);
        $cache.with(|c| {
            let mut c = c.borrow_mut();
            if let Some(hit) = c.get(&key) {
                return hit.clone();
            }
            if c.len() >= TL_CACHE_CAP {
                c.clear();
            }
            let handle = $family.get_or_insert($name, $make);
            c.insert(key, handle.clone());
            handle
        })
    }};
}

/// The registry: four name-addressed metric families sharing one namespace
/// convention (dot-separated static names).
///
/// # Example
///
/// ```
/// use ape_probe::Registry;
/// let r = Registry::new();
/// r.counter_add("demo.events", 2);
/// r.value_record("demo.latency_ns", 1500.0);
/// let snap = r.snapshot();
/// assert_eq!(snap.counters["demo.events"], 2);
/// assert!(snap.values["demo.latency_ns"].p50() > 0.0);
/// ```
#[derive(Debug)]
pub struct Registry {
    id: u64,
    counters: Family<Counter>,
    gauges: Family<Gauge>,
    values: Family<Histogram>,
    spans: Family<SpanStat>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            id: NEXT_REGISTRY.fetch_add(1, Ordering::Relaxed),
            counters: Family::default(),
            gauges: Family::default(),
            values: Family::default(),
            spans: Family::default(),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        cached_handle!(TL_COUNTERS, self, self.counters, name, Counter::new)
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        cached_handle!(TL_GAUGES, self, self.gauges, name, Gauge::new)
    }

    /// The value histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        cached_handle!(TL_VALUES, self, self.values, name, Histogram::new)
    }

    /// The span series registered under `name` (created on first use).
    pub fn span_stat(&self, name: &'static str) -> Arc<SpanStat> {
        cached_handle!(TL_SPANS, self, self.spans, name, SpanStat::new)
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Samples gauge `name` at `v`.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Records `v` into value histogram `name`.
    #[inline]
    pub fn value_record(&self, name: &'static str, v: f64) {
        self.histogram(name).record(v);
    }

    /// Records a completed span into series `name`.
    #[inline]
    pub fn span_record(&self, name: &'static str, depth: usize, dur_ns: u64) {
        self.span_stat(name).record(depth, dur_ns);
    }

    /// Point-in-time copy of every metric in the registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.snapshot_with(Counter::total),
            gauges: self.gauges.snapshot_with(Gauge::snapshot),
            values: self.values.snapshot_with(Histogram::snapshot),
            spans: self.spans.snapshot_with(SpanStat::snapshot),
        }
    }
}

/// Point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge snapshots by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Value histograms by name.
    pub values: BTreeMap<String, HistogramSnapshot>,
    /// Span series by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_stripes_sum() {
        let c = Counter::new();
        c.add(1);
        c.add(41);
        assert_eq!(c.total(), 42);
    }

    #[test]
    fn gauge_tracks_last_and_envelope() {
        let g = Gauge::new();
        for v in [3.0, 9.0, 1.0, 4.0] {
            g.set(v);
        }
        let s = g.snapshot();
        assert_eq!((s.count, s.last, s.min, s.max), (4, 4.0, 1.0, 9.0));
    }

    #[test]
    fn bucket_index_monotone_on_edges() {
        let mut last = 0;
        for e in -45..=70 {
            let v = (e as f64).exp2();
            let i = bucket_index(v);
            assert!(i >= last, "bucket index must be monotone at 2^{e}");
            last = i;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), NBUCKETS - 1);
    }

    #[test]
    fn bucket_mid_brackets_value() {
        for v in [1.0, 3.5, 1234.5, 1e-9, 7.7e12] {
            let idx = bucket_index(v);
            let mid = bucket_mid(idx);
            let rel = (mid - v).abs() / v;
            // A value on a bucket's lower edge is exactly half a
            // sub-bucket from the midpoint.
            assert!(rel <= 1.0 / 16.0, "mid {mid} vs {v}: rel {rel}");
        }
    }

    #[test]
    fn histogram_quantiles_land_in_bucket_error() {
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10_000.0);
        for (q, exact) in [(0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0)] {
            let got = s.quantile(q);
            assert!(
                got / exact < 2.0 && exact / got < 2.0,
                "q{q}: got {got}, exact {exact}"
            );
        }
        assert!((s.mean() - 5000.5).abs() < 1e-6);
    }

    #[test]
    fn quantile_of_empty_and_single() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0.0);
        let h = Histogram::new();
        h.record(7.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 7.0);
        assert_eq!(s.quantile(1.0), 7.0);
    }

    #[test]
    fn registry_round_trip() {
        let r = Registry::new();
        r.counter_add("t.c", 5);
        r.counter_add("t.c", 2);
        r.gauge_set("t.g", 3.0);
        r.value_record("t.v", 10.0);
        r.span_record("t.s", 2, 1000);
        let s = r.snapshot();
        assert_eq!(s.counters["t.c"], 7);
        assert_eq!(s.gauges["t.g"].last, 3.0);
        assert_eq!(s.values["t.v"].count, 1);
        assert_eq!(s.spans["t.s"].min_depth, 2);
        assert_eq!(s.spans["t.s"].durations.count, 1);
    }

    #[test]
    fn distinct_registries_do_not_share_state() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter_add("same.name", 1);
        b.counter_add("same.name", 10);
        assert_eq!(a.snapshot().counters["same.name"], 1);
        assert_eq!(b.snapshot().counters["same.name"], 10);
    }
}
