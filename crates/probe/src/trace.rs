//! Span-tree capture and Chrome trace-event export.
//!
//! [`ChromeTraceSink`] buffers every completed span (and gauge sample) and
//! renders the run as Chrome trace-event JSON — the `traceEvents` array
//! format that both `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly. Spans become complete (`"ph":"X"`) events laid out per
//! thread track; cross-thread parent links (a farm worker span parenting
//! under the submitting request) additionally render as flow arrows
//! (`"ph":"s"` / `"ph":"f"`), and gauges as counter tracks (`"ph":"C"`).

use crate::{epoch_ns, Sink, SpanEvent};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// An owned copy of a completed span, as buffered by [`ChromeTraceSink`]
/// or parsed back from a JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Process-unique span ID.
    pub id: u64,
    /// Parent span ID, if any.
    pub parent: Option<u64>,
    /// Dense thread index the span ran on.
    pub tid: u64,
    /// Nesting depth on the opening thread.
    pub depth: usize,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

impl From<&SpanEvent> for SpanRecord {
    fn from(ev: &SpanEvent) -> Self {
        SpanRecord {
            name: ev.name.to_string(),
            id: ev.id,
            parent: ev.parent,
            tid: ev.tid,
            depth: ev.depth,
            start_ns: ev.start_ns,
            dur_ns: ev.dur_ns,
        }
    }
}

/// One gauge sample with its capture timestamp, for counter tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Gauge name.
    pub name: &'static str,
    /// Sample time, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Sampled level.
    pub value: f64,
}

#[derive(Debug, Default)]
struct Buffers {
    spans: Vec<SpanRecord>,
    gauges: Vec<GaugeSample>,
}

/// A [`Sink`] that buffers the span tree and renders it as Chrome
/// trace-event JSON. Counters and values are ignored (the registry-backed
/// [`SummarySink`](crate::SummarySink) covers those); gauges become
/// Perfetto counter tracks.
///
/// With a file target ([`ChromeTraceSink::to_file`]) the trace is written
/// on [`Sink::flush_events`] — which [`crate::finish`], [`crate::uninstall`]
/// and the panic hook all trigger.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    buffers: Mutex<Buffers>,
    path: Option<PathBuf>,
}

impl ChromeTraceSink {
    /// Buffers in memory only; retrieve with [`ChromeTraceSink::render`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers in memory and writes the rendered trace to `path` when
    /// flushed. No I/O happens before then, so construction cannot fail.
    pub fn to_file(path: impl Into<PathBuf>) -> Self {
        ChromeTraceSink {
            buffers: Mutex::new(Buffers::default()),
            path: Some(path.into()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Buffers> {
        self.buffers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The spans buffered so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Renders the buffered run as Chrome trace-event JSON.
    pub fn render(&self) -> String {
        let buf = self.lock();
        render_chrome_trace_with_gauges(&buf.spans, &buf.gauges)
    }
}

impl Sink for ChromeTraceSink {
    fn on_span(&self, ev: &SpanEvent) {
        self.lock().spans.push(ev.into());
    }

    fn on_counter(&self, _name: &'static str, _delta: u64) {}

    fn on_value(&self, _name: &'static str, _v: f64) {}

    fn on_gauge(&self, name: &'static str, v: f64) {
        self.lock().gauges.push(GaugeSample {
            name,
            ts_ns: epoch_ns(),
            value: v,
        });
    }

    fn flush_events(&self) {
        if let Some(path) = &self.path {
            if let Err(e) = std::fs::write(path, self.render()) {
                eprintln!(
                    "ape-probe: cannot write chrome trace {}: {e}",
                    path.display()
                );
            }
        }
    }

    fn render_report(&self) -> Option<String> {
        self.path.as_ref().map(|p| {
            let n = self.lock().spans.len();
            format!(
                "chrome trace: {n} spans -> {} (load in ui.perfetto.dev)",
                p.display()
            )
        })
    }
}

/// Microseconds with nanosecond fraction, the unit Chrome traces use.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Escapes a name for a JSON string literal (shared with the JSONL sink).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as Chrome trace-event JSON (no counter tracks).
///
/// Events are sorted by `(start_ns, id)` so the output is a deterministic
/// function of the record set.
pub fn render_chrome_trace(spans: &[SpanRecord]) -> String {
    render_chrome_trace_with_gauges(spans, &[])
}

/// Renders spans plus gauge counter tracks as Chrome trace-event JSON.
pub fn render_chrome_trace_with_gauges(spans: &[SpanRecord], gauges: &[GaugeSample]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_ns, s.id));

    let mut events: Vec<String> = Vec::with_capacity(sorted.len() + 2 * gauges.len());
    for s in &sorted {
        let parent = match s.parent {
            Some(p) => p.to_string(),
            None => "null".into(),
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{parent},\"depth\":{}}}}}",
            escape(&s.name),
            s.tid,
            us(s.start_ns),
            us(s.dur_ns),
            s.id,
            s.depth,
        ));
        // Cross-thread parent links render as flow arrows from the parent
        // span's track to this span's start.
        if let Some(pid) = s.parent {
            if let Some(p) = spans.iter().find(|c| c.id == pid) {
                if p.tid != s.tid {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":1,\"tid\":{},\"ts\":{},\"id\":{}}}",
                        escape(&p.name),
                        p.tid,
                        us(p.start_ns),
                        s.id,
                    ));
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{},\"ts\":{},\"id\":{}}}",
                        escape(&p.name),
                        s.tid,
                        us(s.start_ns),
                        s.id,
                    ));
                }
            }
        }
    }
    for g in gauges {
        let v = if g.value.is_finite() { g.value } else { 0.0 };
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\"args\":{{\"value\":{v}}}}}",
            escape(g.name),
            us(g.ts_ns),
        ));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, id: u64, parent: Option<u64>, tid: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            id,
            parent,
            tid,
            depth: 0,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn renders_complete_events_sorted() {
        let spans = vec![
            rec("later", 2, Some(1), 0, 5_000, 1_000),
            rec("first", 1, None, 0, 1_000, 10_000),
        ];
        let json = render_chrome_trace(&spans);
        let first = json.find("\"name\":\"first\"").expect("first present");
        let later = json.find("\"name\":\"later\"").expect("later present");
        assert!(first < later, "events sorted by start time");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":10.000"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ns\"}\n"));
    }

    #[test]
    fn cross_thread_parent_gets_flow_arrows() {
        let spans = vec![
            rec("submit", 1, None, 0, 0, 100_000),
            rec("farm.job", 2, Some(1), 3, 10_000, 50_000),
        ];
        let json = render_chrome_trace(&spans);
        assert!(json.contains("\"ph\":\"s\""), "flow start:\n{json}");
        assert!(json.contains("\"ph\":\"f\""), "flow finish:\n{json}");
        // Same-thread nesting needs no arrows.
        let same = vec![
            rec("outer", 1, None, 0, 0, 100),
            rec("inner", 2, Some(1), 0, 10, 50),
        ];
        assert!(!render_chrome_trace(&same).contains("\"ph\":\"s\""));
    }

    #[test]
    fn sink_buffers_spans_and_gauges() {
        let sink = ChromeTraceSink::new();
        sink.on_span(&SpanEvent {
            name: "t.span",
            id: 7,
            parent: None,
            tid: 0,
            depth: 0,
            start_ns: 100,
            dur_ns: 50,
        });
        sink.on_gauge("t.depth", 3.0);
        sink.on_counter("ignored", 1);
        let json = sink.render();
        assert!(json.contains("t.span"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(!json.contains("ignored"));
        assert_eq!(sink.spans().len(), 1);
    }
}
