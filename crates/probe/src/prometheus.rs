//! Prometheus text-exposition rendering of a [`RegistrySnapshot`] — the
//! groundwork for `ape-serve`'s `/metrics` endpoint.
//!
//! Counters render as `counter`, gauges as `gauge`, and value/span
//! histograms as `summary` families with p50/p90/p99/p999 quantile labels
//! plus `_sum` and `_count` series (span families get a `_duration_ns`
//! suffix). Metric names are sanitised to the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`); output is deterministic (sorted by name).

use crate::registry::{HistogramSnapshot, RegistrySnapshot};
use std::fmt::Write as _;

/// Maps a dotted probe name onto the Prometheus metric-name grammar.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats an f64 the way Prometheus expects (`NaN`/`+Inf`/`-Inf` spelled
/// out).
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn render_summary(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} summary");
    for (label, q) in [
        ("0.5", h.p50()),
        ("0.9", h.p90()),
        ("0.99", h.p99()),
        ("0.999", h.p999()),
    ] {
        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", num(q));
    }
    let _ = writeln!(out, "{name}_sum {}", num(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders a registry snapshot as Prometheus text exposition (version
/// 0.0.4, the `text/plain` format every scraper accepts).
///
/// # Example
///
/// ```
/// use ape_probe::{render_prometheus, Registry};
/// let r = Registry::new();
/// r.counter_add("ape.graph.hit", 3);
/// let text = render_prometheus(&r.snapshot());
/// assert!(text.contains("ape_graph_hit 3"));
/// ```
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, total) in &snap.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {total}");
    }
    for (name, g) in &snap.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", num(g.last));
    }
    for (name, h) in &snap.values {
        render_summary(&mut out, &sanitize(name), h);
    }
    for (name, s) in &snap.spans {
        let name = format!("{}_duration_ns", sanitize(name));
        render_summary(&mut out, &name, &s.durations);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("ape.farm.queue.depth"), "ape_farm_queue_depth");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn renders_all_families() {
        let r = Registry::new();
        r.counter_add("t.hits", 4);
        r.gauge_set("t.depth", 2.0);
        r.value_record("t.lat", 100.0);
        r.span_record("t.solve", 0, 5_000);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE t_hits counter\nt_hits 4\n"));
        assert!(text.contains("# TYPE t_depth gauge\nt_depth 2\n"));
        assert!(text.contains("t_lat{quantile=\"0.5\"}"));
        assert!(text.contains("t_lat_count 1"));
        assert!(text.contains("t_solve_duration_ns{quantile=\"0.99\"}"));
    }

    #[test]
    fn non_finite_spelled_out() {
        assert_eq!(num(f64::NAN), "NaN");
        assert_eq!(num(f64::INFINITY), "+Inf");
        assert_eq!(num(f64::NEG_INFINITY), "-Inf");
    }
}
