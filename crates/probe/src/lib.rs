//! `ape-probe` — structured observability for the APE estimator/synthesis
//! stack.
//!
//! The paper's whole argument is about *where time goes* (APE-seeded
//! intervals cut ASTRX/OBLX synthesis time; equation/simulation anchoring
//! only works when solver convergence is visible). This crate is the
//! measurement layer every instrumented crate reports through:
//!
//! * **timing spans** — hierarchical enter/exit pairs with wall-clock
//!   duration ([`span`]), nested by a thread-local depth;
//! * **counters** — monotonic event counts ([`counter`]);
//! * **values** — scalar observations aggregated into log-scale histograms
//!   ([`value`]);
//! * **gauges** — instantaneous levels such as queue depths, where the
//!   last/min/max samples matter rather than the mean ([`gauge`]).
//!
//! Events flow to a process-global [`Sink`]. Three are built in:
//!
//! | Sink | Behaviour |
//! |---|---|
//! | *(none installed)* | near-zero overhead: one relaxed atomic load per probe point |
//! | [`SummarySink`] | aggregates everything, renders a human-readable report |
//! | [`JsonLinesSink`] | one JSON object per event, for offline analysis |
//!
//! Binaries opt in through the `APE_TRACE` environment variable (see
//! [`install_from_env`]): `APE_TRACE=summary` prints an aggregated report
//! on exit, `APE_TRACE=jsonl` streams events to stderr, and
//! `APE_TRACE=jsonl:trace.jsonl` streams them to a file.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(ape_probe::SummarySink::new());
//! ape_probe::install(sink.clone());
//! {
//!     let _s = ape_probe::span("demo.work");
//!     ape_probe::counter("demo.events", 3);
//!     ape_probe::value("demo.cost", 0.5);
//! }
//! let report = sink.report();
//! assert!(report.contains("demo.work"));
//! assert!(report.contains("demo.events"));
//! ape_probe::uninstall();
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

mod jsonl;
mod summary;

pub use jsonl::JsonLinesSink;
pub use summary::{CounterTotals, GaugeAgg, SpanAgg, SummarySink, ValueAgg};

/// Receiver for probe events. Implementations must be cheap and must never
/// panic: they run inside the hot paths they observe.
pub trait Sink: Send + Sync {
    /// A timing span named `name` at nesting `depth` completed after
    /// `nanos` wall-clock nanoseconds.
    fn on_span(&self, name: &'static str, depth: usize, nanos: u64);
    /// Counter `name` advanced by `delta`.
    fn on_counter(&self, name: &'static str, delta: u64);
    /// Scalar observation `v` recorded under `name`.
    fn on_value(&self, name: &'static str, v: f64);
    /// Instantaneous level `v` sampled under `name` (queue depths, in-flight
    /// job counts). Unlike [`Sink::on_value`], the *last* sample is the
    /// headline statistic, not the mean. Defaults to forwarding to
    /// `on_value` so pre-gauge sinks keep working.
    fn on_gauge(&self, name: &'static str, v: f64) {
        self.on_value(name, v);
    }
    /// Renders an end-of-run report, if this sink aggregates one.
    fn render_report(&self) -> Option<String> {
        None
    }
    /// Flushes any buffered output.
    fn flush_events(&self) {}
}

/// A sink that drops every event. Installing it is equivalent to (but
/// slightly slower than) having no sink at all; it exists so call sites can
/// treat "tracing off" uniformly.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn on_span(&self, _name: &'static str, _depth: usize, _nanos: u64) {}
    fn on_counter(&self, _name: &'static str, _delta: u64) {}
    fn on_value(&self, _name: &'static str, _v: f64) {}
    fn on_gauge(&self, _name: &'static str, _v: f64) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// `true` when a sink is installed and probe points are live.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global event receiver, replacing any
/// previous sink.
pub fn install(sink: Arc<dyn Sink>) {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the installed sink (flushing it first) and returns it, disabling
/// all probe points.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Relaxed);
    let prev = slot.take();
    if let Some(s) = &prev {
        s.flush_events();
    }
    prev
}

fn with_sink(f: impl FnOnce(&dyn Sink)) {
    let guard = SINK.read().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = guard.as_ref() {
        f(s.as_ref());
    }
}

/// Advances counter `name` by `delta`. A single relaxed atomic load when no
/// sink is installed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if is_enabled() {
        with_sink(|s| s.on_counter(name, delta));
    }
}

/// Records scalar observation `v` under `name`. A single relaxed atomic
/// load when no sink is installed.
#[inline]
pub fn value(name: &'static str, v: f64) {
    if is_enabled() {
        with_sink(|s| s.on_value(name, v));
    }
}

/// Samples gauge `name` at level `v` (queue depth, in-flight count). A
/// single relaxed atomic load when no sink is installed.
#[inline]
pub fn gauge(name: &'static str, v: f64) {
    if is_enabled() {
        with_sink(|s| s.on_gauge(name, v));
    }
}

/// Opens a timing span; the returned guard reports the elapsed wall-clock
/// time when dropped. Inert (no clock read) when no sink is installed.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if is_enabled() {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            live: Some((name, depth, Instant::now())),
        }
    } else {
        SpanGuard { live: None }
    }
}

/// RAII guard returned by [`span`]: reports the span on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(&'static str, usize, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, depth, start)) = self.live.take() {
            let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            with_sink(|s| s.on_span(name, depth, nanos));
        }
    }
}

/// What [`install_from_env`] decided to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvTrace {
    /// `APE_TRACE` unset or empty: nothing installed.
    Off,
    /// `APE_TRACE=summary`: a [`SummarySink`] was installed.
    Summary,
    /// `APE_TRACE=jsonl[:path]`: a [`JsonLinesSink`] was installed, writing
    /// to the contained target (`"stderr"` or the file path).
    JsonLines(String),
    /// `APE_TRACE` was set to something unrecognised; nothing installed.
    Unrecognised(String),
}

/// Reads `APE_TRACE` and installs the matching sink:
///
/// * `summary` — [`SummarySink`]; call [`finish`] to print its report;
/// * `jsonl` — [`JsonLinesSink`] streaming to stderr;
/// * `jsonl:PATH` — [`JsonLinesSink`] streaming to the file `PATH`
///   (truncated; falls back to stderr if the file cannot be created).
///
/// Anything else (including unset) leaves tracing disabled.
pub fn install_from_env() -> EnvTrace {
    let Ok(raw) = std::env::var("APE_TRACE") else {
        return EnvTrace::Off;
    };
    let raw = raw.trim();
    if raw.is_empty() {
        return EnvTrace::Off;
    }
    if raw.eq_ignore_ascii_case("summary") {
        install(Arc::new(SummarySink::new()));
        return EnvTrace::Summary;
    }
    if let Some(rest) = raw.strip_prefix("jsonl") {
        let target = rest.strip_prefix(':').unwrap_or("");
        if target.is_empty() {
            install(Arc::new(JsonLinesSink::to_stderr()));
            return EnvTrace::JsonLines("stderr".into());
        }
        match JsonLinesSink::to_file(target) {
            Ok(sink) => {
                install(Arc::new(sink));
                return EnvTrace::JsonLines(target.to_string());
            }
            Err(e) => {
                eprintln!("ape-probe: cannot open APE_TRACE file `{target}`: {e}; using stderr");
                install(Arc::new(JsonLinesSink::to_stderr()));
                return EnvTrace::JsonLines("stderr".into());
            }
        }
    }
    eprintln!("ape-probe: unrecognised APE_TRACE value `{raw}` (want `summary`, `jsonl` or `jsonl:PATH`); tracing disabled");
    EnvTrace::Unrecognised(raw.to_string())
}

/// Flushes the installed sink and, if it aggregates a report
/// ([`SummarySink`]), prints that report to stderr. Call once at the end of
/// a binary that used [`install_from_env`]. A no-op when tracing is off.
pub fn finish() {
    if !is_enabled() {
        return;
    }
    with_sink(|s| {
        s.flush_events();
        if let Some(report) = s.render_report() {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{report}");
        }
    });
}

/// Formats a nanosecond duration for human-readable reports.
pub fn fmt_nanos(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns_f >= 1e9 {
        format!("{:.2}s", ns_f / 1e9)
    } else if ns_f >= 1e6 {
        format!("{:.2}ms", ns_f / 1e6)
    } else if ns_f >= 1e3 {
        format!("{:.2}us", ns_f / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders an aligned two-or-more-column block used by the summary report.
fn render_rows(out: &mut String, header: &[&str], rows: &[Vec<String>]) {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let _ = write!(out, "  {:<w$}", header[0], w = widths[0]);
    for (h, w) in header.iter().zip(&widths).skip(1) {
        let _ = write!(out, "  {h:>w$}");
    }
    out.push('\n');
    for row in rows {
        let _ = write!(out, "  {:<w$}", row[0], w = widths[0]);
        for (cell, w) in row.iter().zip(&widths).skip(1) {
            let _ = write!(out, "  {cell:>w$}");
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        let s = NullSink;
        s.on_span("a", 0, 1);
        s.on_counter("b", 2);
        s.on_value("c", 3.0);
        s.on_gauge("d", 4.0);
        assert!(s.render_report().is_none());
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_500), "1.50us");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }

    #[test]
    fn span_guard_is_inert_when_disabled() {
        // No sink installed in this unit-test process at this point: the
        // guard must not read the clock or track depth.
        if !is_enabled() {
            let g = span("never.recorded");
            assert!(g.live.is_none());
        }
    }
}
