//! `ape-probe` — structured telemetry for the APE estimator/synthesis
//! stack.
//!
//! The paper's whole argument is about *where time goes* (APE-seeded
//! intervals cut ASTRX/OBLX synthesis time; equation/simulation anchoring
//! only works when solver convergence is visible). This crate is the
//! measurement layer every instrumented crate reports through:
//!
//! * **span trees** — hierarchical timing spans with process-unique IDs
//!   and parent links ([`span`]), propagated explicitly across thread
//!   boundaries ([`current_span`] / [`span_with_parent`]) so e.g. a farm
//!   worker's spans parent under the submitting request;
//! * **counters** — monotonic event counts ([`counter`]);
//! * **values** — scalar observations aggregated into log-linear quantile
//!   histograms ([`value`]);
//! * **gauges** — instantaneous levels such as queue depths, where the
//!   last/min/max samples matter rather than the mean ([`gauge`]).
//!
//! Aggregation happens in a lock-free [`Registry`] (sharded atomic
//! counters, HDR-style histograms with p50/p90/p99/p999), exportable as
//! Prometheus text exposition ([`render_prometheus`]) or Chrome
//! trace-event JSON loadable in Perfetto ([`render_chrome_trace`]).
//!
//! Events flow to a process-global [`Sink`]. Four are built in:
//!
//! | Sink | Behaviour |
//! |---|---|
//! | *(none installed)* | near-zero overhead: one relaxed atomic load per probe point |
//! | [`SummarySink`] | aggregates into a [`Registry`], renders a report |
//! | [`JsonLinesSink`] | one JSON object per event, for offline analysis |
//! | [`ChromeTraceSink`] | buffers the span tree, renders Perfetto-loadable JSON |
//!
//! Binaries opt in through the `APE_TRACE` environment variable (see
//! [`install_from_env`]): `APE_TRACE=summary` prints an aggregated report
//! on exit, `APE_TRACE=jsonl[:path]` streams events, and
//! `APE_TRACE=chrome[:path]` writes a Chrome trace on [`finish`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(ape_probe::SummarySink::new());
//! ape_probe::install(sink.clone());
//! {
//!     let _s = ape_probe::span("demo.work");
//!     ape_probe::counter("demo.events", 3);
//!     ape_probe::value("demo.cost", 0.5);
//! }
//! let report = sink.report();
//! assert!(report.contains("demo.work"));
//! assert!(report.contains("demo.events"));
//! ape_probe::uninstall();
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock, RwLock};
use std::time::Instant;

mod jsonl;
mod prometheus;
pub mod registry;
mod summary;
pub mod trace;

pub use jsonl::JsonLinesSink;
pub use prometheus::render_prometheus;
pub use registry::{
    thread_index, Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, Registry,
    RegistrySnapshot, SpanSnapshot, SpanStat,
};
pub use summary::{CounterTotals, SpanAgg, SummarySink};
pub use trace::{render_chrome_trace, ChromeTraceSink, SpanRecord};

/// One completed timing span, as delivered to [`Sink::on_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static, dot-separated).
    pub name: &'static str,
    /// Process-unique span ID (never 0, never reused).
    pub id: u64,
    /// ID of the enclosing span: the innermost open span on the opening
    /// thread, or the explicitly propagated parent for cross-thread spans.
    pub parent: Option<u64>,
    /// Dense index of the thread the span ran on ([`thread_index`]).
    pub tid: u64,
    /// Nesting depth on the opening thread at open time.
    pub depth: usize,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

/// Receiver for probe events. Implementations must be cheap and must never
/// panic: they run inside the hot paths they observe.
pub trait Sink: Send + Sync {
    /// A timing span completed; `ev` carries its identity, tree links, and
    /// timing.
    fn on_span(&self, ev: &SpanEvent);
    /// Counter `name` advanced by `delta`.
    fn on_counter(&self, name: &'static str, delta: u64);
    /// Scalar observation `v` recorded under `name`.
    fn on_value(&self, name: &'static str, v: f64);
    /// Instantaneous level `v` sampled under `name` (queue depths, in-flight
    /// job counts). Unlike [`Sink::on_value`], the *last* sample is the
    /// headline statistic, not the mean. Defaults to forwarding to
    /// `on_value` so gauge-unaware sinks keep working.
    fn on_gauge(&self, name: &'static str, v: f64) {
        self.on_value(name, v);
    }
    /// Renders an end-of-run report, if this sink aggregates one.
    fn render_report(&self) -> Option<String> {
        None
    }
    /// Flushes any buffered output.
    fn flush_events(&self) {}
}

/// A sink that drops every event. Installing it is equivalent to (but
/// slightly slower than) having no sink at all; it exists so call sites can
/// treat "tracing off" uniformly.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn on_span(&self, _ev: &SpanEvent) {}
    fn on_counter(&self, _name: &'static str, _delta: u64) {}
    fn on_value(&self, _name: &'static str, _v: f64) {}
    fn on_gauge(&self, _name: &'static str, _v: f64) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static PANIC_FLUSH: Once = Once::new();

thread_local! {
    /// IDs of the open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Nanoseconds since the process trace epoch (anchored on first use).
pub fn epoch_ns() -> u64 {
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// `true` when a sink is installed and probe points are live.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global event receiver, replacing any
/// previous sink. Also arms (once) a panic hook that flushes the installed
/// sink, so a panicking binary still leaves complete trace output behind.
pub fn install(sink: Arc<dyn Sink>) {
    let _ = epoch_ns(); // anchor the trace epoch before the first span
    PANIC_FLUSH.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            with_sink(|s| s.flush_events());
        }));
    });
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the installed sink (flushing it first) and returns it, disabling
/// all probe points.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    let mut slot = SINK.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Relaxed);
    let prev = slot.take();
    if let Some(s) = &prev {
        s.flush_events();
    }
    prev
}

fn with_sink(f: impl FnOnce(&dyn Sink)) {
    let guard = SINK.read().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = guard.as_ref() {
        f(s.as_ref());
    }
}

/// Advances counter `name` by `delta`. A single relaxed atomic load when no
/// sink is installed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if is_enabled() {
        with_sink(|s| s.on_counter(name, delta));
    }
}

/// Records scalar observation `v` under `name`. A single relaxed atomic
/// load when no sink is installed.
#[inline]
pub fn value(name: &'static str, v: f64) {
    if is_enabled() {
        with_sink(|s| s.on_value(name, v));
    }
}

/// Samples gauge `name` at level `v` (queue depth, in-flight count). A
/// single relaxed atomic load when no sink is installed.
#[inline]
pub fn gauge(name: &'static str, v: f64) {
    if is_enabled() {
        with_sink(|s| s.on_gauge(name, v));
    }
}

/// The ID of the innermost open span on this thread, if tracing is on.
///
/// Capture this where work is *submitted* and hand it to
/// [`span_with_parent`] where the work *runs*, so spans executed on another
/// thread still parent under the submitting span in the trace tree.
#[inline]
pub fn current_span() -> Option<u64> {
    if is_enabled() {
        SPAN_STACK.with(|s| s.borrow().last().copied())
    } else {
        None
    }
}

/// Opens a timing span; the returned guard reports the elapsed wall-clock
/// time when dropped. The span parents under the innermost open span on
/// this thread. Inert (no clock read) when no sink is installed.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None, false)
}

/// Opens a timing span with an explicitly propagated parent (typically a
/// [`current_span`] captured on the submitting thread). Nested spans opened
/// while this guard is live parent under it as usual. Inert when no sink is
/// installed.
#[inline]
pub fn span_with_parent(name: &'static str, parent: Option<u64>) -> SpanGuard {
    open_span(name, parent, true)
}

fn open_span(name: &'static str, explicit: Option<u64>, use_explicit: bool) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { live: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = if use_explicit {
            explicit
        } else {
            stack.last().copied()
        };
        let depth = stack.len();
        stack.push(id);
        (parent, depth)
    });
    SpanGuard {
        live: Some(LiveSpan {
            name,
            id,
            parent,
            depth,
            start_ns: epoch_ns(),
        }),
    }
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    depth: usize,
    start_ns: u64,
}

/// RAII guard returned by [`span`]: reports the span on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// The span's process-unique ID, for explicit propagation (`None` when
    /// tracing was off at open time).
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let end_ns = epoch_ns();
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards normally drop innermost-first; tolerate
                // out-of-order drops by removing wherever the ID sits.
                if stack.last() == Some(&live.id) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|&x| x == live.id) {
                    stack.remove(pos);
                }
            });
            let ev = SpanEvent {
                name: live.name,
                id: live.id,
                parent: live.parent,
                tid: thread_index(),
                depth: live.depth,
                start_ns: live.start_ns,
                dur_ns: end_ns.saturating_sub(live.start_ns),
            };
            with_sink(|s| s.on_span(&ev));
        }
    }
}

/// What [`install_from_env`] decided to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvTrace {
    /// `APE_TRACE` unset or empty: nothing installed.
    Off,
    /// `APE_TRACE=summary`: a [`SummarySink`] was installed.
    Summary,
    /// `APE_TRACE=jsonl[:path]`: a [`JsonLinesSink`] was installed, writing
    /// to the contained target (`"stderr"` or the file path).
    JsonLines(String),
    /// `APE_TRACE=chrome[:path]`: a [`ChromeTraceSink`] was installed;
    /// [`finish`] writes the Chrome trace JSON to the contained path.
    Chrome(String),
    /// `APE_TRACE` was set to something unrecognised; nothing installed.
    Unrecognised(String),
}

/// Reads `APE_TRACE` and installs the matching sink:
///
/// * `summary` — [`SummarySink`]; call [`finish`] to print its report;
/// * `jsonl` — [`JsonLinesSink`] streaming to stderr;
/// * `jsonl:PATH` — [`JsonLinesSink`] streaming to the file `PATH`
///   (truncated; falls back to stderr if the file cannot be created);
/// * `chrome[:PATH]` — [`ChromeTraceSink`]; [`finish`] writes
///   Perfetto-loadable trace JSON to `PATH` (default `ape-trace.json`).
///
/// Anything else (including unset) leaves tracing disabled.
pub fn install_from_env() -> EnvTrace {
    let Ok(raw) = std::env::var("APE_TRACE") else {
        return EnvTrace::Off;
    };
    let raw = raw.trim();
    if raw.is_empty() {
        return EnvTrace::Off;
    }
    if raw.eq_ignore_ascii_case("summary") {
        install(Arc::new(SummarySink::new()));
        return EnvTrace::Summary;
    }
    if let Some(rest) = raw.strip_prefix("chrome") {
        let target = rest.strip_prefix(':').unwrap_or("");
        let path = if target.is_empty() {
            "ape-trace.json"
        } else {
            target
        };
        install(Arc::new(ChromeTraceSink::to_file(path)));
        return EnvTrace::Chrome(path.to_string());
    }
    if let Some(rest) = raw.strip_prefix("jsonl") {
        let target = rest.strip_prefix(':').unwrap_or("");
        if target.is_empty() {
            install(Arc::new(JsonLinesSink::to_stderr()));
            return EnvTrace::JsonLines("stderr".into());
        }
        match JsonLinesSink::to_file(target) {
            Ok(sink) => {
                install(Arc::new(sink));
                return EnvTrace::JsonLines(target.to_string());
            }
            Err(e) => {
                eprintln!("ape-probe: cannot open APE_TRACE file `{target}`: {e}; using stderr");
                install(Arc::new(JsonLinesSink::to_stderr()));
                return EnvTrace::JsonLines("stderr".into());
            }
        }
    }
    eprintln!("ape-probe: unrecognised APE_TRACE value `{raw}` (want `summary`, `jsonl[:PATH]` or `chrome[:PATH]`); tracing disabled");
    EnvTrace::Unrecognised(raw.to_string())
}

/// Flushes the installed sink and, if it aggregates a report
/// ([`SummarySink`]), prints that report to stderr. Call once at the end of
/// a binary that used [`install_from_env`]. A no-op when tracing is off.
pub fn finish() {
    if !is_enabled() {
        return;
    }
    with_sink(|s| {
        s.flush_events();
        if let Some(report) = s.render_report() {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{report}");
        }
    });
}

/// Formats a nanosecond duration for human-readable reports.
pub fn fmt_nanos(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns_f >= 1e9 {
        format!("{:.2}s", ns_f / 1e9)
    } else if ns_f >= 1e6 {
        format!("{:.2}ms", ns_f / 1e6)
    } else if ns_f >= 1e3 {
        format!("{:.2}us", ns_f / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders an aligned two-or-more-column block used by the summary report.
fn render_rows(out: &mut String, header: &[&str], rows: &[Vec<String>]) {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let _ = write!(out, "  {:<w$}", header[0], w = widths[0]);
    for (h, w) in header.iter().zip(&widths).skip(1) {
        let _ = write!(out, "  {h:>w$}");
    }
    out.push('\n');
    for row in rows {
        let _ = write!(out, "  {:<w$}", row[0], w = widths[0]);
        for (cell, w) in row.iter().zip(&widths).skip(1) {
            let _ = write!(out, "  {cell:>w$}");
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        let s = NullSink;
        s.on_span(&SpanEvent {
            name: "a",
            id: 1,
            parent: None,
            tid: 0,
            depth: 0,
            start_ns: 0,
            dur_ns: 1,
        });
        s.on_counter("b", 2);
        s.on_value("c", 3.0);
        s.on_gauge("d", 4.0);
        assert!(s.render_report().is_none());
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_500), "1.50us");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }

    #[test]
    fn span_guard_is_inert_when_disabled() {
        // No sink installed in this unit-test process at this point: the
        // guard must not read the clock, allocate an ID, or touch the
        // stack.
        if !is_enabled() {
            let g = span("never.recorded");
            assert!(g.live.is_none());
            assert!(g.id().is_none());
            assert!(current_span().is_none());
        }
    }
}
