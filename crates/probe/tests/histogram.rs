// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Registry guarantees under load: histogram quantile error bounds (the
//! log-linear buckets must stay within 2× of the exact quantile — in
//! practice they stay within ~9 %), and exact counter/histogram totals
//! under concurrent updates from 8 threads.

use ape_probe::{Histogram, Registry};
use std::sync::Arc;
use std::thread;

/// Deterministic SplitMix64 stream for reproducible "random" values.
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn quantiles_within_log_linear_error_bound() {
    // Log-uniform values over 9 decades: the hardest case for a bucketed
    // histogram, since every decade must resolve.
    let mut seed = 42u64;
    let mut vals: Vec<f64> = (0..100_000)
        .map(|_| {
            let u = splitmix(&mut seed) as f64 / u64::MAX as f64;
            10f64.powf(u * 9.0 - 3.0) // 1e-3 ..= 1e6
        })
        .collect();
    let h = Histogram::new();
    for &v in &vals {
        h.record(v);
    }
    vals.sort_by(f64::total_cmp);
    let s = h.snapshot();
    assert_eq!(s.count, vals.len() as u64);
    for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
        let exact = vals[((q * vals.len() as f64) as usize).min(vals.len() - 1)];
        let got = s.quantile(q);
        let ratio = (got / exact).max(exact / got);
        assert!(
            ratio <= 2.0,
            "q{q}: got {got}, exact {exact}, ratio {ratio}"
        );
        // The design bound is much tighter than the acceptance bound: one
        // sub-bucket is 2^(1/8) wide, so allow ~2 sub-buckets of slack.
        assert!(
            ratio <= 1.5,
            "q{q} drifted past the design bound: {got} vs {exact}"
        );
    }
}

#[test]
fn extreme_values_clamp_into_envelope() {
    let h = Histogram::new();
    h.record(1e-300); // below bucket range -> underflow bucket
    h.record(1e300); // above bucket range -> overflow bucket
    h.record(0.0);
    h.record(-5.0);
    let s = h.snapshot();
    assert_eq!(s.count, 4);
    assert_eq!(s.min, -5.0);
    assert_eq!(s.max, 1e300);
    // Quantiles stay inside the exact envelope even for out-of-range
    // buckets.
    let p0 = s.quantile(0.0);
    let p100 = s.quantile(1.0);
    assert!((-5.0..=1e300).contains(&p0));
    assert!((-5.0..=1e300).contains(&p100));
    assert_eq!(p100, 1e300);
}

#[test]
fn concurrent_registry_updates_from_8_threads_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = reg.clone();
            thread::spawn(move || {
                let mut seed = t as u64 + 1;
                for i in 0..PER_THREAD {
                    reg.counter_add("conc.counter", 1);
                    reg.counter_add("conc.weighted", t as u64 + 1);
                    let v = (splitmix(&mut seed) % 1_000_000) as f64 + 1.0;
                    reg.value_record("conc.hist", v);
                    reg.gauge_set("conc.gauge", v);
                    reg.span_record("conc.span", t, i + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    let snap = reg.snapshot();
    let n = (THREADS as u64) * PER_THREAD;
    assert_eq!(
        snap.counters["conc.counter"], n,
        "striped counter lost adds"
    );
    assert_eq!(
        snap.counters["conc.weighted"],
        PER_THREAD * (1..=THREADS as u64).sum::<u64>(),
        "weighted counter lost adds"
    );
    assert_eq!(snap.values["conc.hist"].count, n, "histogram lost records");
    assert_eq!(snap.gauges["conc.gauge"].count, n, "gauge lost samples");
    let sp = &snap.spans["conc.span"];
    assert_eq!(sp.durations.count, n, "span series lost records");
    assert_eq!(sp.min_depth, 0, "min depth must survive concurrent min");
    // The histogram's envelope is exact even under concurrency.
    let hv = &snap.values["conc.hist"];
    assert!(hv.min >= 1.0 && hv.max <= 1_000_000.0);
    let p50 = hv.p50();
    assert!(
        (hv.min..=hv.max).contains(&p50),
        "p50 {p50} outside envelope"
    );
}
