// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Cross-thread aggregation regression tests.
//!
//! The farm runs estimation jobs on worker threads; every probe event they
//! record must merge into the one process-level [`SummarySink`] report.
//! These tests pin that guarantee down: if sink routing ever became
//! thread-local, they would observe only the installing thread's events and
//! fail.

use ape_probe::SummarySink;
use std::sync::Arc;
use std::thread;

/// One test function only: the sink registry is process-global, so separate
/// `#[test]`s would race each other's install/uninstall.
#[test]
fn worker_thread_events_merge_into_process_sink() {
    let sink = Arc::new(SummarySink::new());
    ape_probe::install(sink.clone());

    // Two worker threads, each recording a distinctly named counter and
    // span plus contributions to shared series.
    let workers: Vec<_> = [
        ("farm.test.w0", "farm.test.span0"),
        ("farm.test.w1", "farm.test.span1"),
    ]
    .into_iter()
    .map(|(counter_name, span_name)| {
        thread::spawn(move || {
            for _ in 0..10 {
                ape_probe::counter(counter_name, 1);
                ape_probe::counter("farm.test.shared", 1);
                let _s = ape_probe::span(span_name);
                ape_probe::value("farm.test.value", 2.0);
                ape_probe::gauge("farm.test.gauge", 5.0);
            }
        })
    })
    .collect();
    for w in workers {
        w.join().expect("worker thread panicked");
    }
    // Events from the installing thread merge into the same report.
    ape_probe::counter("farm.test.main", 3);
    ape_probe::uninstall();

    let counters = sink.counters();
    assert_eq!(counters["farm.test.w0"], 10, "worker 0 counters dropped");
    assert_eq!(counters["farm.test.w1"], 10, "worker 1 counters dropped");
    assert_eq!(
        counters["farm.test.shared"], 20,
        "shared counter lost deltas"
    );
    assert_eq!(counters["farm.test.main"], 3);

    let spans = sink.spans();
    assert_eq!(spans["farm.test.span0"].count, 10, "worker 0 spans dropped");
    assert_eq!(spans["farm.test.span1"].count, 10, "worker 1 spans dropped");

    let values = sink.values();
    assert_eq!(values["farm.test.value"].count, 20);
    let gauges = sink.gauges();
    assert_eq!(gauges["farm.test.gauge"].count, 20);
    assert_eq!(gauges["farm.test.gauge"].last, 5.0);

    // And the rendered report names every thread's series.
    let report = sink.report();
    for needle in [
        "farm.test.w0",
        "farm.test.w1",
        "farm.test.span0",
        "farm.test.span1",
        "farm.test.gauge",
    ] {
        assert!(report.contains(needle), "report lacks {needle}:\n{report}");
    }
}
