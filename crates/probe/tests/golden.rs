// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Golden-output tests for the exporters: a fixed event set must render
//! byte-identically, so a formatting regression in either the Chrome
//! trace-event (Perfetto) or the Prometheus renderer fails loudly here.

use ape_probe::{render_chrome_trace, render_prometheus, Registry, SpanRecord};

fn fixed_spans() -> Vec<SpanRecord> {
    vec![
        SpanRecord {
            name: "sweep.submit".into(),
            id: 1,
            parent: None,
            tid: 0,
            depth: 0,
            start_ns: 1_000,
            dur_ns: 90_000,
        },
        SpanRecord {
            name: "farm.job".into(),
            id: 2,
            parent: Some(1),
            tid: 3,
            depth: 0,
            start_ns: 11_500,
            dur_ns: 40_250,
        },
        SpanRecord {
            name: "ape.l3.opamp".into(),
            id: 3,
            parent: Some(2),
            tid: 3,
            depth: 1,
            start_ns: 12_000,
            dur_ns: 30_000,
        },
    ]
}

#[test]
fn chrome_trace_golden() {
    let got = render_chrome_trace(&fixed_spans());
    let want = concat!(
        "{\"traceEvents\":[\n",
        "{\"name\":\"sweep.submit\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.000,\"dur\":90.000,\"args\":{\"id\":1,\"parent\":null,\"depth\":0}},\n",
        "{\"name\":\"farm.job\",\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":11.500,\"dur\":40.250,\"args\":{\"id\":2,\"parent\":1,\"depth\":0}},\n",
        "{\"name\":\"sweep.submit\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":1.000,\"id\":2},\n",
        "{\"name\":\"sweep.submit\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":3,\"ts\":11.500,\"id\":2},\n",
        "{\"name\":\"ape.l3.opamp\",\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":12.000,\"dur\":30.000,\"args\":{\"id\":3,\"parent\":2,\"depth\":1}}\n",
        "],\"displayTimeUnit\":\"ns\"}\n",
    );
    assert_eq!(got, want);
}

#[test]
fn prometheus_golden() {
    let reg = Registry::new();
    reg.counter_add("ape.graph.hit", 42);
    reg.gauge_set("ape.farm.queue.depth", 3.0);
    reg.value_record("ape.farm.job.latency_ns", 1024.0);
    reg.span_record("farm.job", 0, 2048);
    let got = render_prometheus(&reg.snapshot());
    // 1024 sits exactly on a bucket boundary: the log-linear midpoint of
    // its bucket is 1024 * (1 + 0.5/8) = 1088; 2048's is 2176.
    let want = concat!(
        "# TYPE ape_graph_hit counter\n",
        "ape_graph_hit 42\n",
        "# TYPE ape_farm_queue_depth gauge\n",
        "ape_farm_queue_depth 3\n",
        "# TYPE ape_farm_job_latency_ns summary\n",
        "ape_farm_job_latency_ns{quantile=\"0.5\"} 1024\n",
        "ape_farm_job_latency_ns{quantile=\"0.9\"} 1024\n",
        "ape_farm_job_latency_ns{quantile=\"0.99\"} 1024\n",
        "ape_farm_job_latency_ns{quantile=\"0.999\"} 1024\n",
        "ape_farm_job_latency_ns_sum 1024\n",
        "ape_farm_job_latency_ns_count 1\n",
        "# TYPE farm_job_duration_ns summary\n",
        "farm_job_duration_ns{quantile=\"0.5\"} 2048\n",
        "farm_job_duration_ns{quantile=\"0.9\"} 2048\n",
        "farm_job_duration_ns{quantile=\"0.99\"} 2048\n",
        "farm_job_duration_ns{quantile=\"0.999\"} 2048\n",
        "farm_job_duration_ns_sum 2048\n",
        "farm_job_duration_ns_count 1\n",
    );
    assert_eq!(got, want);
}

#[test]
fn chrome_trace_of_empty_run_is_valid() {
    assert_eq!(
        render_chrome_trace(&[]),
        "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n"
    );
}
