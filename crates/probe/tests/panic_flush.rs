// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Regression test for JSONL event loss when `finish()` is never called:
//! a binary that panics mid-run must still leave complete JSONL lines on
//! disk. `install()` arms a panic hook that flushes the installed sink, so
//! the buffered file writer cannot swallow the tail of the trace.
//!
//! One `#[test]` only: the probe sink is process-global and this file gets
//! its own test binary, so nothing else can race the install.

use ape_probe::JsonLinesSink;
use std::sync::Arc;

#[test]
fn panicking_thread_still_leaves_complete_jsonl_lines() {
    let path = std::env::temp_dir().join(format!("ape_probe_panic_{}.jsonl", std::process::id()));
    let sink = Arc::new(JsonLinesSink::to_file(&path).expect("temp file"));
    ape_probe::install(sink);

    // Suppress the default hook's backtrace chatter but keep whatever hook
    // chain install() built (ours flushes after delegating).
    let worker = std::thread::spawn(|| {
        let _outer = ape_probe::span("panic.outer");
        for i in 0..500u64 {
            ape_probe::counter("panic.events", 1);
            ape_probe::value("panic.value", i as f64);
        }
        panic!("simulated estimator crash");
    });
    assert!(worker.join().is_err(), "worker must have panicked");

    // No finish(), no uninstall(): the panic hook alone must have flushed.
    // (The 500 counter + 500 value lines far exceed BufWriter's default
    // 8 KiB buffer only in aggregate — without a flush the tail would be
    // missing.)
    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let counter_lines = text
        .lines()
        .filter(|l| l.contains("\"panic.events\""))
        .count();
    let value_lines = text
        .lines()
        .filter(|l| l.contains("\"panic.value\""))
        .count();
    assert_eq!(counter_lines, 500, "counter events lost:\n{text}");
    assert_eq!(value_lines, 500, "value events lost");
    // Every line is a complete JSON object — no truncated tail.
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "incomplete line: {line:?}"
        );
    }

    ape_probe::uninstall();
    let _ = std::fs::remove_file(&path);
}
