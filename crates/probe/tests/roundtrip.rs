// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Round-trip test: events written by `JsonLinesSink` parse back into the
//! same (type, name, payload) triples with a minimal JSON-object parser.

use ape_probe::{JsonLinesSink, Sink, SpanEvent};
use std::collections::HashMap;

/// Parses one flat JSON object of string/number/null fields. Only the
/// grammar `JsonLinesSink` emits — good enough to prove the output is
/// machine-readable line by line.
fn parse_flat_object(line: &str) -> HashMap<String, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("line is an object");
    let mut out = HashMap::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let (key, after_key) = take_string(rest.trim_start_matches(','));
        let after_colon = after_key.strip_prefix(':').expect("colon after key");
        let (val, remainder) = if after_colon.starts_with('"') {
            take_string(after_colon)
        } else {
            let end = after_colon.find(',').unwrap_or(after_colon.len());
            (after_colon[..end].to_string(), &after_colon[end..])
        };
        out.insert(key, val);
        rest = remainder.trim_start_matches(',');
    }
    out
}

/// Reads a leading JSON string literal, returning (unescaped value, rest).
fn take_string(s: &str) -> (String, &str) {
    let body = s.strip_prefix('"').expect("string literal");
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return (out, &body[i + 1..]),
            '\\' => {
                let (_, esc) = chars.next().expect("escape target");
                match esc {
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    other => out.push(other),
                }
            }
            c => out.push(c),
        }
    }
    panic!("unterminated string in {s}");
}

#[test]
fn jsonl_output_parses_back() {
    let sink = JsonLinesSink::to_buffer();
    sink.on_span(&SpanEvent {
        name: "ape.l3.opamp",
        id: 17,
        parent: Some(4),
        tid: 2,
        depth: 1,
        start_ns: 5_500,
        dur_ns: 81_234,
    });
    sink.on_counter("ape.cache.hit", 42);
    sink.on_value("anneal.accept_ratio", 0.4375);
    sink.on_value("weird\"name", -1.5e-9);
    sink.flush_events();

    let text = sink.buffer_contents();
    let events: Vec<HashMap<String, String>> = text.lines().map(parse_flat_object).collect();
    assert_eq!(events.len(), 4);

    assert_eq!(events[0]["type"], "span");
    assert_eq!(events[0]["name"], "ape.l3.opamp");
    assert_eq!(events[0]["id"], "17");
    assert_eq!(events[0]["parent"], "4");
    assert_eq!(events[0]["tid"], "2");
    assert_eq!(events[0]["depth"], "1");
    assert_eq!(events[0]["start_ns"], "5500");
    assert_eq!(events[0]["ns"], "81234");

    assert_eq!(events[1]["type"], "counter");
    assert_eq!(events[1]["name"], "ape.cache.hit");
    assert_eq!(events[1]["delta"], "42");

    assert_eq!(events[2]["type"], "value");
    let v: f64 = events[2]["value"].parse().expect("numeric value");
    assert!((v - 0.4375).abs() < 1e-12);

    assert_eq!(events[3]["name"], "weird\"name");
    let v: f64 = events[3]["value"].parse().expect("numeric value");
    assert!((v + 1.5e-9).abs() < 1e-21);
}

#[test]
fn file_sink_writes_and_flushes() {
    let path = std::env::temp_dir().join(format!("ape_probe_rt_{}.jsonl", std::process::id()));
    {
        let sink = JsonLinesSink::to_file(&path).expect("temp file");
        sink.on_counter("c", 1);
        sink.flush_events();
    }
    let text = std::fs::read_to_string(&path).expect("file exists");
    assert_eq!(text.lines().count(), 1);
    let ev = parse_flat_object(text.lines().next().unwrap());
    assert_eq!(ev["name"], "c");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_sink_flushes_on_drop_without_explicit_flush() {
    let path = std::env::temp_dir().join(format!("ape_probe_drop_{}.jsonl", std::process::id()));
    {
        let sink = JsonLinesSink::to_file(&path).expect("temp file");
        for _ in 0..100 {
            sink.on_counter("dropped.without.flush", 1);
        }
        // No flush_events(): the Drop impl must save the buffered lines.
    }
    let text = std::fs::read_to_string(&path).expect("file exists");
    assert_eq!(text.lines().count(), 100);
    for line in text.lines() {
        assert_eq!(parse_flat_object(line)["name"], "dropped.without.flush");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn global_install_records_through_api() {
    use std::sync::Arc;
    let sink = Arc::new(ape_probe::SummarySink::new());
    ape_probe::install(sink.clone());
    {
        let _outer = ape_probe::span("rt.outer");
        let _inner = ape_probe::span("rt.inner");
        ape_probe::counter("rt.count", 5);
        ape_probe::value("rt.val", 2.0);
    }
    let removed = ape_probe::uninstall().expect("sink was installed");
    assert!(!ape_probe::is_enabled());
    drop(removed);
    let spans = sink.spans();
    assert_eq!(spans["rt.outer"].count, 1);
    assert_eq!(spans["rt.inner"].count, 1);
    assert!(spans["rt.inner"].min_depth > spans["rt.outer"].min_depth);
    assert_eq!(sink.counters()["rt.count"], 5);
    assert_eq!(sink.values()["rt.val"].count, 1);
}
