//! The daemon: a TCP accept loop handing connections to per-connection
//! reader/completion thread pairs, all submitting into one resident
//! [`Farm`] with a pool-wide shared estimation graph.
//!
//! # Admission control
//!
//! A request passes three gates before it runs:
//!
//! 1. **connection budget** — each connection may have at most
//!    [`ServerConfig::inflight_per_conn`] farm-backed requests in flight;
//!    excess requests fail fast with `overloaded` (429).
//! 2. **farm queue** — submissions are fail-fast: a full queue answers
//!    `overloaded` (429) instead of blocking the connection's reader.
//! 3. **deadline** — `deadline_ms` (or the server default) becomes a timed
//!    cancellation token; expiry surfaces as `deadline_exceeded` (504).
//!
//! Cancellation is a tree: server root → connection → request. Client
//! disconnect cancels the connection token, which abandons every job the
//! connection still has in flight at the estimator's next checkpoint.

use crate::json::{obj, s, Value};
use crate::proto::{
    self, err_response, ok_response, ErrorCode, WireError, WireRequest, DEFAULT_MAX_LINE,
};
use ape_core::cancel::CancelToken;
use ape_farm::{Farm, FarmConfig, FarmError, JobHandle, Request, SubmitOptions};
use ape_netlist::{parse_spice, Technology};
use ape_probe::render_prometheus;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Farm worker threads. Defaults to available parallelism.
    pub workers: usize,
    /// Farm queue capacity (gate 2 of admission control).
    pub queue_capacity: usize,
    /// Maximum concurrent connections; excess accepts are closed
    /// immediately after a `shutting_down`-style error line.
    pub max_connections: usize,
    /// Per-connection in-flight budget (gate 1 of admission control).
    pub inflight_per_conn: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Request line size cap, bytes; longer lines answer `oversized` (413).
    pub max_line_bytes: usize,
    /// Honour the `shutdown` op (tests and benches); when `false` the op
    /// answers `bad_request`.
    pub allow_remote_shutdown: bool,
    /// Attach the pool-wide shared estimation graph (see
    /// [`FarmConfig::shared_graph`]). On by default: it is the point of a
    /// resident daemon.
    pub shared_graph: bool,
    /// Reset each worker's thread-local sizing graph between jobs so every
    /// request reads through the shared store. Off by default (local memos
    /// are faster); equivalence tests turn it on to make cross-connection
    /// shared-graph traffic deterministic rather than
    /// scheduling-dependent.
    pub isolate_sizing: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 256,
            max_connections: 64,
            inflight_per_conn: 32,
            default_deadline: None,
            max_line_bytes: DEFAULT_MAX_LINE,
            allow_remote_shutdown: true,
            shared_graph: true,
            isolate_sizing: false,
        }
    }
}

/// Monotonic counters for the daemon itself (the farm keeps its own).
#[derive(Default)]
struct ServeStats {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    cancelled: AtomicU64,
}

/// State shared by the accept loop and every connection.
pub struct ServerState {
    farm: Farm,
    config: ServerConfig,
    registry: ape_probe::Registry,
    root: CancelToken,
    shutting_down: AtomicBool,
    open_conns: AtomicUsize,
    stats: ServeStats,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("config", &self.config)
            .finish()
    }
}

impl ServerState {
    fn new(tech: Technology, config: ServerConfig) -> Arc<ServerState> {
        let farm_config = FarmConfig {
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            job_timeout: None,
            isolate_sizing_cache: config.isolate_sizing,
            isolate_solver_cache: true,
            shared_graph: config.shared_graph,
        };
        Arc::new(ServerState {
            farm: Farm::new(tech, farm_config),
            config,
            registry: ape_probe::Registry::new(),
            root: CancelToken::new(),
            shutting_down: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            stats: ServeStats::default(),
        })
    }

    /// The resident farm (to register technologies in-process, inspect
    /// stats, or reach the shared memo).
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.root.cancel();
        self.farm.cancel_all();
    }

    /// A full metrics snapshot: the daemon's own registry merged with the
    /// farm's lifetime counters, latency histograms, and the shared
    /// graph's hit/miss counters — ready for [`render_prometheus`].
    pub fn metrics_snapshot(&self) -> ape_probe::RegistrySnapshot {
        let mut snap = self.registry.snapshot();
        let f = self.farm.stats();
        for (name, v) in [
            ("ape.farm.submitted", f.submitted),
            ("ape.farm.executed", f.executed),
            ("ape.farm.cache_hits", f.cache_hits),
            ("ape.farm.deduped", f.deduped),
            ("ape.farm.cancelled", f.cancelled),
            ("ape.farm.panicked", f.panicked),
            ("ape.farm.rejected", f.rejected),
        ] {
            snap.counters.insert(name.to_string(), v);
        }
        let st = &self.stats;
        for (name, v) in [
            (
                "ape.serve.connections.total",
                st.connections.load(Ordering::Relaxed),
            ),
            ("ape.serve.requests", st.requests.load(Ordering::Relaxed)),
            ("ape.serve.errors", st.errors.load(Ordering::Relaxed)),
            (
                "ape.serve.overloaded",
                st.overloaded.load(Ordering::Relaxed),
            ),
            ("ape.serve.cancelled", st.cancelled.load(Ordering::Relaxed)),
        ] {
            snap.counters.insert(name.to_string(), v);
        }
        snap.values.insert(
            "ape.farm.queue.wait_ns".to_string(),
            self.farm.queue_wait_ns(),
        );
        snap.values.insert(
            "ape.farm.job.latency_ns".to_string(),
            self.farm.job_latency_ns(),
        );
        if let Some(store) = self.farm.shared_memo() {
            let g = store.stats();
            snap.counters
                .insert("ape.graph.shared.hits".to_string(), g.hits);
            snap.counters
                .insert("ape.graph.shared.misses".to_string(), g.misses);
            snap.counters
                .insert("ape.graph.shared.inserts".to_string(), g.inserts);
            snap.counters
                .insert("ape.graph.shared.evictions".to_string(), g.evictions);
        }
        snap
    }

    fn stats_value(&self, conn_inflight: usize) -> Value {
        let f = self.farm.stats();
        let st = &self.stats;
        let shared = self.farm.shared_memo().map(|m| m.stats());
        obj([
            (
                "farm",
                obj([
                    ("submitted", Value::Num(f.submitted as f64)),
                    ("executed", Value::Num(f.executed as f64)),
                    ("cache_hits", Value::Num(f.cache_hits as f64)),
                    ("deduped", Value::Num(f.deduped as f64)),
                    ("cancelled", Value::Num(f.cancelled as f64)),
                    ("panicked", Value::Num(f.panicked as f64)),
                    ("rejected", Value::Num(f.rejected as f64)),
                ]),
            ),
            (
                "serve",
                obj([
                    (
                        "connections",
                        Value::Num(self.open_conns.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "requests",
                        Value::Num(st.requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "errors",
                        Value::Num(st.errors.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "overloaded",
                        Value::Num(st.overloaded.load(Ordering::Relaxed) as f64),
                    ),
                    ("conn_inflight", Value::Num(conn_inflight as f64)),
                ]),
            ),
            (
                "shared_graph",
                shared.map_or(Value::Null, |g| {
                    obj([
                        ("hits", Value::Num(g.hits as f64)),
                        ("misses", Value::Num(g.misses as f64)),
                        ("inserts", Value::Num(g.inserts as f64)),
                        ("evictions", Value::Num(g.evictions as f64)),
                    ])
                }),
            ),
        ])
    }
}

/// A bound, not-yet-running daemon.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over a
    /// fresh farm running `tech` as the default technology.
    pub fn bind(addr: &str, tech: Technology, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            state: ServerState::new(tech, config),
            listener,
            addr,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server state (farm access, metrics snapshot).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Runs the accept loop on the calling thread until shutdown.
    pub fn run(self) -> io::Result<()> {
        let Server {
            state, listener, ..
        } = self;
        for stream in listener.incoming() {
            if state.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if state.open_conns.load(Ordering::Relaxed) >= state.config.max_connections {
                // Over the connection cap: one typed error line, then close.
                let mut stream = stream;
                let err = WireError::new(ErrorCode::Overloaded, "connection limit reached");
                let _ = writeln!(stream, "{}", err_response(0, &err));
                continue;
            }
            let state = state.clone();
            let _ = std::thread::Builder::new()
                .name("ape-serve-conn".to_string())
                .spawn(move || {
                    state.open_conns.fetch_add(1, Ordering::Relaxed);
                    state.stats.connections.fetch_add(1, Ordering::Relaxed);
                    handle_conn(&state, stream);
                    state.open_conns.fetch_sub(1, Ordering::Relaxed);
                });
        }
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a handle
    /// that can stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.addr;
        let state = self.state.clone();
        let thread = std::thread::Builder::new()
            .name("ape-serve-accept".to_string())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }
}

/// Handle to a daemon running on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests shutdown and joins the accept loop.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.state.begin_shutdown();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown_and_join();
        }
    }
}

/// Reads one `\n`-terminated line with a hard byte cap.
///
/// Returns `Ok(Some(line))` (terminator stripped), `Ok(None)` at EOF, and
/// `Err(bytes_discarded)` when the cap was exceeded — the rest of the
/// oversized line (to its newline) has been drained so the protocol can
/// resync.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    cap: usize,
) -> io::Result<Result<Option<String>, usize>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A non-empty partial line without terminator still counts.
            if buf.is_empty() {
                return Ok(Ok(None));
            }
            let line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(Ok(Some(line)));
        }
        if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + nl > cap {
                let discarded = buf.len() + nl;
                reader.consume(nl + 1);
                return Ok(Err(discarded));
            }
            buf.extend_from_slice(&chunk[..nl]);
            reader.consume(nl + 1);
            let line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(Ok(Some(line)));
        }
        let take = chunk.len();
        if buf.len() + take > cap {
            // Oversized: drain to the newline without buffering.
            reader.consume(take);
            let mut discarded = buf.len() + take;
            loop {
                let chunk = reader.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(Err(discarded));
                }
                if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
                    discarded += nl;
                    reader.consume(nl + 1);
                    return Ok(Err(discarded));
                }
                discarded += chunk.len();
                let n = chunk.len();
                reader.consume(n);
            }
        }
        buf.extend_from_slice(chunk);
        reader.consume(take);
    }
}

fn handle_conn(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);

    // Sniff HTTP: a browser/Prometheus scraper opening with `GET ` gets a
    // one-shot HTTP response on the same port.
    let first = match read_line_capped(&mut reader, state.config.max_line_bytes) {
        Ok(Ok(Some(line))) => line,
        Ok(Ok(None)) => return,
        Ok(Err(_)) => {
            // Oversized first line: report it and fall through to the
            // NDJSON loop — the reader already resynced past the newline.
            let mut w = &write_half;
            let err = WireError::new(ErrorCode::Oversized, "first line exceeds the size cap");
            let _ = writeln!(w, "{}", err_response(0, &err));
            let _ = w.flush();
            serve_ndjson(state, None, reader, write_half);
            return;
        }
        Err(_) => return,
    };
    if first.starts_with("GET ") || first.starts_with("HEAD ") {
        serve_http(state, &first, reader, write_half);
        return;
    }

    serve_ndjson(state, Some(first), reader, write_half);
}

fn serve_http<R: Read>(
    state: &ServerState,
    request_line: &str,
    mut reader: BufReader<R>,
    mut w: TcpStream,
) {
    // Drain the header block so the peer isn't hit with a reset while
    // still sending.
    let mut header = String::new();
    while let Ok(n) = reader.read_line(&mut header) {
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
        header.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            render_prometheus(&state.metrics_snapshot()),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = write!(
        w,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

/// Metadata for one farm-backed request awaiting completion.
struct Pending {
    id: u64,
    handle: JobHandle,
    started: Instant,
    deadline: Option<Instant>,
    /// Set by an explicit `cancel` op, to disambiguate `cancelled` from
    /// `deadline_exceeded` when the farm reports [`FarmError::Cancelled`].
    cancelled_explicitly: Arc<AtomicBool>,
}

type CancelMap = Arc<Mutex<HashMap<u64, (CancelToken, Arc<AtomicBool>)>>>;

struct ConnShared<W: Write> {
    writer: Mutex<W>,
    inflight: AtomicUsize,
    cancel_map: CancelMap,
}

impl<W: Write> ConnShared<W> {
    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

fn serve_ndjson<R: Read, W: Write + Send + 'static>(
    state: &Arc<ServerState>,
    first_line: Option<String>,
    mut reader: BufReader<R>,
    writer: W,
) {
    let conn = Arc::new(ConnShared {
        writer: Mutex::new(writer),
        inflight: AtomicUsize::new(0),
        cancel_map: Arc::new(Mutex::new(HashMap::new())),
    });
    let conn_token = state.root.child();
    let latency = state.registry.histogram("ape.serve.request.latency_ns");

    // Completion thread: waits farm-backed requests FIFO and writes their
    // responses. Immediate ops answer from the reader thread; the writer
    // mutex keeps lines atomic.
    let (tx, rx) = mpsc::channel::<Pending>();
    let completion = {
        let conn = conn.clone();
        let state = state.clone();
        let latency = latency.clone();
        std::thread::Builder::new()
            .name("ape-serve-complete".to_string())
            .spawn(move || {
                while let Ok(p) = rx.recv() {
                    let outcome = p.handle.wait();
                    latency.record(p.started.elapsed().as_nanos() as f64);
                    conn.inflight.fetch_sub(1, Ordering::SeqCst);
                    conn.cancel_map
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&p.id);
                    let line = match outcome {
                        Ok(resp) => {
                            let result = match &resp {
                                ape_farm::Response::OpAmp(amp) => proto::design_result(amp),
                                ape_farm::Response::Netlist(est) => proto::estimate_result(est),
                                other => s(&format!("{other:?}")),
                            };
                            ok_response(p.id, result)
                        }
                        Err(e) => {
                            let err = map_farm_error(&e, &p);
                            if err.code == ErrorCode::Cancelled {
                                state.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                            }
                            state.stats.errors.fetch_add(1, Ordering::Relaxed);
                            err_response(p.id, &err)
                        }
                    };
                    conn.write_line(&line);
                }
            })
    };

    let mut pending_first = first_line;
    loop {
        let line = match pending_first.take() {
            Some(l) => l,
            None => match read_line_capped(&mut reader, state.config.max_line_bytes) {
                Ok(Ok(Some(l))) => l,
                Ok(Ok(None)) | Err(_) => break,
                Ok(Err(discarded)) => {
                    state.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let err = WireError::new(
                        ErrorCode::Oversized,
                        format!(
                            "request line of {discarded}+ bytes exceeds the {}-byte cap",
                            state.config.max_line_bytes
                        ),
                    );
                    conn.write_line(&err_response(0, &err));
                    continue;
                }
            },
        };
        if line.trim().is_empty() {
            continue;
        }
        state.stats.requests.fetch_add(1, Ordering::Relaxed);
        state.registry.counter_add("ape.serve.requests", 1);
        let (id, req) = match proto::parse_request(&line) {
            Ok(parsed) => parsed,
            Err((id, err)) => {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                state.registry.counter_add("ape.serve.bad_request", 1);
                conn.write_line(&err_response(id, &err));
                continue;
            }
        };
        let stop = dispatch(state, &conn, &conn_token, &tx, id, req);
        if stop {
            break;
        }
    }

    // Disconnect (or shutdown): cancel everything this connection still
    // has in flight, then let the completion thread drain.
    conn_token.cancel();
    drop(tx);
    if let Ok(t) = completion {
        let _ = t.join();
    }
}

/// Handles one parsed request. Returns `true` when the connection should
/// stop reading (shutdown).
fn dispatch<W: Write>(
    state: &Arc<ServerState>,
    conn: &Arc<ConnShared<W>>,
    conn_token: &CancelToken,
    tx: &mpsc::Sender<Pending>,
    id: u64,
    req: WireRequest,
) -> bool {
    match req {
        WireRequest::Ping => {
            conn.write_line(&ok_response(id, obj([("pong", Value::Bool(true))])));
        }
        WireRequest::Stats => {
            let inflight = conn.inflight.load(Ordering::SeqCst);
            conn.write_line(&ok_response(id, state.stats_value(inflight)));
        }
        WireRequest::Metrics => {
            let text = render_prometheus(&state.metrics_snapshot());
            conn.write_line(&ok_response(id, obj([("text", s(&text))])));
        }
        WireRequest::RegisterTech { base, overrides } => {
            let tech = overrides.apply(base);
            let fp = state.farm.register_technology(tech);
            state.registry.counter_add("ape.serve.register_tech", 1);
            conn.write_line(&ok_response(
                id,
                obj([("technology", s(&proto::fingerprint_hex(fp)))]),
            ));
        }
        WireRequest::RegisterCalibration { table } => {
            let fp = state.farm.register_calibration(table);
            state
                .registry
                .counter_add("ape.serve.register_calibration", 1);
            conn.write_line(&ok_response(
                id,
                obj([("calibration", s(&proto::fingerprint_hex(fp)))]),
            ));
        }
        WireRequest::Cancel { target } => {
            let entry = conn
                .cancel_map
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&target)
                .cloned();
            let hit = match entry {
                Some((token, flag)) => {
                    flag.store(true, Ordering::SeqCst);
                    token.cancel();
                    true
                }
                None => false,
            };
            conn.write_line(&ok_response(id, obj([("cancelled", Value::Bool(hit))])));
        }
        WireRequest::Shutdown => {
            if !state.config.allow_remote_shutdown {
                let err = WireError::new(ErrorCode::BadRequest, "remote shutdown is disabled");
                conn.write_line(&err_response(id, &err));
                return false;
            }
            // Flip the state before acknowledging: a client that has read
            // the reply must observe `is_shutting_down()` as true.
            state.begin_shutdown();
            conn.write_line(&ok_response(id, obj([("stopping", Value::Bool(true))])));
            return true;
        }
        WireRequest::Design {
            topology,
            spec,
            technology,
            calibration,
            deadline_ms,
        } => {
            submit_job(
                state,
                conn,
                conn_token,
                tx,
                id,
                Request::OpAmpDesign { topology, spec },
                technology,
                calibration,
                deadline_ms,
            );
        }
        WireRequest::Estimate {
            deck,
            output,
            technology,
            calibration,
            deadline_ms,
        } => {
            // Parse on the connection thread: a bad deck never occupies a
            // worker or a queue slot.
            let (circuit, _deck_tech) = match parse_spice(&deck) {
                Ok(parsed) => parsed,
                Err(e) => {
                    state.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let err = WireError::new(ErrorCode::EstimatorError, format!("bad deck: {e}"));
                    conn.write_line(&err_response(id, &err));
                    return false;
                }
            };
            let Some(node) = circuit.find_node(&output) else {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                let err = WireError::new(
                    ErrorCode::EstimatorError,
                    format!("output node `{output}` is not in the deck"),
                );
                conn.write_line(&err_response(id, &err));
                return false;
            };
            submit_job(
                state,
                conn,
                conn_token,
                tx,
                id,
                Request::NetlistEstimate {
                    circuit: Box::new(circuit),
                    output: node,
                },
                technology,
                calibration,
                deadline_ms,
            );
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn submit_job<W: Write>(
    state: &Arc<ServerState>,
    conn: &Arc<ConnShared<W>>,
    conn_token: &CancelToken,
    tx: &mpsc::Sender<Pending>,
    id: u64,
    req: Request,
    technology: Option<u64>,
    calibration: Option<u64>,
    deadline_ms: Option<u64>,
) {
    // Gate 1: the connection's in-flight budget.
    let budget = state.config.inflight_per_conn;
    if conn.inflight.load(Ordering::SeqCst) >= budget {
        state.stats.overloaded.fetch_add(1, Ordering::Relaxed);
        state.stats.errors.fetch_add(1, Ordering::Relaxed);
        state.registry.counter_add("ape.serve.overloaded", 1);
        let err = WireError::new(
            ErrorCode::Overloaded,
            format!("connection budget of {budget} in-flight requests exhausted"),
        );
        conn.write_line(&err_response(id, &err));
        return;
    }

    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(state.config.default_deadline);
    let token = conn_token.child();
    let cancelled_explicitly = Arc::new(AtomicBool::new(false));
    conn.cancel_map
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, (token.clone(), cancelled_explicitly.clone()));

    // Gate 2: fail-fast farm submission.
    let handle = state.farm.submit_opts(
        req,
        SubmitOptions {
            technology,
            calibration,
            token: Some(token),
            deadline,
            fail_fast: true,
        },
    );
    conn.inflight.fetch_add(1, Ordering::SeqCst);
    let pending = Pending {
        id,
        handle,
        started: Instant::now(),
        deadline: deadline.map(|d| Instant::now() + d),
        cancelled_explicitly,
    };
    if tx.send(pending).is_err() {
        // Completion thread is gone (connection tearing down).
        conn.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn map_farm_error(e: &FarmError, p: &Pending) -> WireError {
    match e {
        FarmError::Ape(err) => WireError::new(ErrorCode::EstimatorError, err.to_string()),
        FarmError::Oblx(err) => WireError::new(ErrorCode::EstimatorError, err.to_string()),
        FarmError::Cancelled => {
            if p.cancelled_explicitly.load(Ordering::SeqCst) {
                WireError::new(ErrorCode::Cancelled, "cancelled by request")
            } else if p.deadline.is_some_and(|d| Instant::now() >= d) {
                WireError::new(ErrorCode::DeadlineExceeded, "deadline expired")
            } else {
                WireError::new(ErrorCode::Cancelled, "cancelled (connection closed)")
            }
        }
        FarmError::Panicked(m) => WireError::new(ErrorCode::Internal, format!("job panicked: {m}")),
        FarmError::WorkerLost(m) => WireError::new(ErrorCode::Internal, m.clone()),
        FarmError::QueueFull => WireError::new(ErrorCode::Overloaded, "farm queue full"),
        FarmError::ShuttingDown => WireError::new(ErrorCode::ShuttingDown, "server shutting down"),
        FarmError::UnknownTechnology(fp) => WireError::new(
            ErrorCode::UnknownTechnology,
            format!(
                "technology {} is not registered",
                proto::fingerprint_hex(*fp)
            ),
        ),
        FarmError::UnknownCalibration(fp) => WireError::new(
            ErrorCode::UnknownCalibration,
            format!(
                "calibration {} is not registered",
                proto::fingerprint_hex(*fp)
            ),
        ),
        FarmError::CalibrationMismatch { expected, got } => WireError::new(
            ErrorCode::CalibrationMismatch,
            format!(
                "calibration was fitted for technology {}, request runs on {}",
                proto::fingerprint_hex(*got),
                proto::fingerprint_hex(*expected)
            ),
        ),
        other => WireError::new(ErrorCode::Internal, other.to_string()),
    }
}

/// Serves the NDJSON protocol over arbitrary streams — the `--stdio` mode
/// used by tests and the `ape-check` driver. Semantics match a TCP
/// connection (including pipelining via the completion thread).
pub fn serve_stream<R: Read, W: Write + Send + 'static>(
    state: &Arc<ServerState>,
    reader: R,
    writer: W,
) {
    serve_ndjson(state, None, BufReader::new(reader), writer);
}

/// Builds a standalone server state without binding a socket (stdio mode).
pub fn standalone_state(tech: Technology, config: ServerConfig) -> Arc<ServerState> {
    ServerState::new(tech, config)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn capped_reader_resyncs_after_oversized_line() {
        let data = format!("{}\nnext\n", "x".repeat(100));
        let mut r = BufReader::new(data.as_bytes());
        match read_line_capped(&mut r, 10).unwrap() {
            Err(discarded) => assert!(discarded >= 10),
            other => panic!("expected oversize, got {other:?}"),
        }
        assert_eq!(
            read_line_capped(&mut r, 10).unwrap().unwrap(),
            Some("next".to_string())
        );
        assert_eq!(read_line_capped(&mut r, 10).unwrap().unwrap(), None);
    }

    #[test]
    fn capped_reader_accepts_unterminated_final_line() {
        let mut r = BufReader::new(&b"tail"[..]);
        assert_eq!(
            read_line_capped(&mut r, 10).unwrap().unwrap(),
            Some("tail".to_string())
        );
    }
}
