//! The `ape-serve` daemon binary.
//!
//! ```text
//! ape-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!           [--max-connections N] [--inflight N] [--deadline-ms N]
//!           [--tech 1p2um|0p5um] [--no-shared-graph] [--no-remote-shutdown]
//!           [--stdio]
//! ```
//!
//! `--stdio` speaks the same NDJSON protocol over stdin/stdout (one
//! process per client) — handy for tests and for driving the daemon from
//! a subprocess without networking.

use ape_netlist::Technology;
use ape_serve::{serve_stream, standalone_state, Server, ServerConfig};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:4199".to_string();
    let mut config = ServerConfig::default();
    let mut tech_name = "1p2um".to_string();
    let mut stdio = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("ape-serve: {arg} needs {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = take("HOST:PORT"),
            "--workers" => config.workers = parse_num(&take("N")),
            "--queue" => config.queue_capacity = parse_num(&take("N")),
            "--max-connections" => config.max_connections = parse_num(&take("N")),
            "--inflight" => config.inflight_per_conn = parse_num(&take("N")),
            "--deadline-ms" => {
                config.default_deadline = Some(Duration::from_millis(parse_num(&take("N")) as u64));
            }
            "--tech" => tech_name = take("1p2um|0p5um"),
            "--no-shared-graph" => config.shared_graph = false,
            "--no-remote-shutdown" => config.allow_remote_shutdown = false,
            "--stdio" => stdio = true,
            "--help" | "-h" => {
                println!(
                    "ape-serve: persistent estimation daemon (NDJSON over TCP)\n\
                     options: --addr HOST:PORT  --workers N  --queue N\n\
                     \x20        --max-connections N  --inflight N  --deadline-ms N\n\
                     \x20        --tech 1p2um|0p5um  --no-shared-graph\n\
                     \x20        --no-remote-shutdown  --stdio"
                );
                return;
            }
            other => {
                eprintln!("ape-serve: unknown option `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let tech = match tech_name.as_str() {
        "1p2um" => Technology::default_1p2um(),
        "0p5um" => Technology::default_0p5um(),
        other => {
            eprintln!("ape-serve: unknown technology `{other}` (want 1p2um or 0p5um)");
            std::process::exit(2);
        }
    };

    if config.workers <= 1 {
        eprintln!(
            "ape-serve: WARNING: running with {} worker(s) — detected parallelism is 1, \
             so concurrent requests serialize; throughput numbers from this box do not \
             demonstrate scaling",
            config.workers.max(1)
        );
    }

    if stdio {
        let state = standalone_state(tech, config);
        serve_stream(&state, std::io::stdin(), std::io::stdout());
        return;
    }

    let server = match Server::bind(&addr, tech, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ape-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "ape-serve: listening on {} (NDJSON; GET /metrics for Prometheus)",
        server.local_addr()
    );
    if let Err(e) = server.run() {
        eprintln!("ape-serve: accept loop failed: {e}");
        std::process::exit(1);
    }
}

fn parse_num(text: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("ape-serve: `{text}` is not a number");
        std::process::exit(2);
    })
}
