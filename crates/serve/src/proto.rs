//! The wire protocol: one JSON object per line in, one per line out.
//!
//! # Grammar
//!
//! Every request line is a JSON object with an `"op"` string and a
//! numeric `"id"` (client-chosen, echoed back verbatim; ids only need to
//! be unique among a connection's in-flight requests). Every response is
//! `{"id":…,"ok":true,"result":{…}}` or
//! `{"id":…,"ok":false,"error":{"code":…,"status":…,"message":…,"retryable":…}}`.
//!
//! Operations:
//!
//! | op              | payload                                                        |
//! |-----------------|----------------------------------------------------------------|
//! | `ping`          | —                                                              |
//! | `register_tech` | `base` (`"1p2um"`/`"0p5um"`), optional `name`/`vdd`/`vss`/`lmin`/`wmin` overrides |
//! | `register_calibration` | `table` (a calibration document as produced by `ape-calib`) |
//! | `design`        | `topology{mirror,buffer}`, `spec{gain,ugf_hz,area_max_m2,ibias,cl[,zout_ohm]}`, optional `technology`, `calibration`, `deadline_ms` |
//! | `estimate`      | `deck` (SPICE text), `output` (node name), optional `technology`, `calibration`, `deadline_ms` |
//! | `cancel`        | `target` (the id of an in-flight request on this connection)   |
//! | `stats`         | —                                                              |
//! | `metrics`       | — (Prometheus text as a JSON string; also `GET /metrics`)      |
//! | `shutdown`      | — (requires the server to allow remote shutdown)               |

use crate::json::{self, obj, opt, s, Value};
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_core::{basic::MirrorTopology, netest::NetlistEstimate};
use ape_netlist::Technology;

/// Default cap on one request line, bytes. A line longer than this is
/// answered with [`ErrorCode::Oversized`] and discarded without parsing.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// Typed error vocabulary of the protocol, with HTTP-flavoured status
/// codes so load balancers and clients can triage without parsing
/// messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, missing/invalid fields, unknown op.
    BadRequest,
    /// The request line exceeded the size cap.
    Oversized,
    /// `technology` referenced an unregistered fingerprint.
    UnknownTechnology,
    /// `calibration` referenced an unregistered table fingerprint.
    UnknownCalibration,
    /// `calibration` referenced a table fitted for a different technology
    /// than the request runs on.
    CalibrationMismatch,
    /// Admission control rejected the request (connection budget or farm
    /// queue full). Retry after draining in-flight work.
    Overloaded,
    /// The per-request deadline expired before a result was published.
    DeadlineExceeded,
    /// The request was cancelled (explicit `cancel` op or disconnect).
    Cancelled,
    /// The estimator/synthesis rejected or could not satisfy the request.
    EstimatorError,
    /// The job died inside the farm (panic, lost worker).
    Internal,
    /// The server is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The protocol's stable string form.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownTechnology => "unknown_technology",
            ErrorCode::UnknownCalibration => "unknown_calibration",
            ErrorCode::CalibrationMismatch => "calibration_mismatch",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::EstimatorError => "estimator_error",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// HTTP-flavoured status (499 is nginx's client-closed-request).
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::Oversized => 413,
            ErrorCode::UnknownTechnology => 404,
            ErrorCode::UnknownCalibration => 404,
            ErrorCode::CalibrationMismatch => 409,
            ErrorCode::Overloaded => 429,
            ErrorCode::DeadlineExceeded => 504,
            ErrorCode::Cancelled => 499,
            ErrorCode::EstimatorError => 422,
            ErrorCode::Internal => 500,
            ErrorCode::ShuttingDown => 503,
        }
    }

    /// Whether retrying the identical request later can succeed.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::DeadlineExceeded | ErrorCode::Cancelled
        )
    }
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// Liveness probe.
    Ping,
    /// Register a tenant technology; answers its fingerprint.
    RegisterTech {
        /// The builtin card the tenant starts from.
        base: TechBase,
        /// Field overrides applied on top of the base card.
        overrides: TechOverrides,
    },
    /// Register a calibration table; answers its fingerprint.
    RegisterCalibration {
        /// The parsed calibration table.
        table: ape_calib::Calibration,
    },
    /// Size a two-stage op-amp.
    Design {
        /// Topology selections.
        topology: OpAmpTopology,
        /// Performance specification.
        spec: OpAmpSpec,
        /// Tenant technology fingerprint (`None` = server default).
        technology: Option<u64>,
        /// Registered calibration fingerprint (`None` = uncalibrated).
        calibration: Option<u64>,
        /// Per-request deadline, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Estimate an arbitrary SPICE netlist.
    Estimate {
        /// The SPICE deck text.
        deck: String,
        /// Output node name (as spelled in the deck).
        output: String,
        /// Tenant technology fingerprint (`None` = server default).
        technology: Option<u64>,
        /// Registered calibration fingerprint (`None` = uncalibrated).
        calibration: Option<u64>,
        /// Per-request deadline, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Cancel an in-flight request on this connection.
    Cancel {
        /// The id of the request to cancel.
        target: u64,
    },
    /// Server + farm statistics.
    Stats,
    /// Prometheus metrics text.
    Metrics,
    /// Stop the server.
    Shutdown,
}

/// Builtin technology cards a tenant registration starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechBase {
    /// [`Technology::default_1p2um`] (5 V).
    OnePoint2um,
    /// [`Technology::default_0p5um`] (3.3 V).
    ZeroPoint5um,
}

/// Optional overrides applied to a [`TechBase`] card.
#[derive(Debug, Clone, Default)]
pub struct TechOverrides {
    /// New card name.
    pub name: Option<String>,
    /// Positive supply, volts.
    pub vdd: Option<f64>,
    /// Negative supply, volts.
    pub vss: Option<f64>,
    /// Minimum channel length, metres.
    pub lmin: Option<f64>,
    /// Minimum channel width, metres.
    pub wmin: Option<f64>,
}

impl TechOverrides {
    /// Materialises the tenant card.
    pub fn apply(&self, base: TechBase) -> Technology {
        let mut t = match base {
            TechBase::OnePoint2um => Technology::default_1p2um(),
            TechBase::ZeroPoint5um => Technology::default_0p5um(),
        };
        if let Some(name) = &self.name {
            t.name = name.clone();
        }
        if let Some(v) = self.vdd {
            t.vdd = v;
        }
        if let Some(v) = self.vss {
            t.vss = v;
        }
        if let Some(v) = self.lmin {
            t.lmin = v;
        }
        if let Some(v) = self.wmin {
            t.wmin = v;
        }
        t
    }
}

/// A protocol-level rejection: the error envelope for `id` (when the line
/// was parsed far enough to recover one).
#[derive(Debug, Clone)]
pub struct WireError {
    /// The typed code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

/// Parses one request line into `(id, request)`. On failure the `id` is
/// whatever could be recovered from the line (so the error response still
/// correlates), defaulting to 0.
pub fn parse_request(line: &str) -> Result<(u64, WireRequest), (u64, WireError)> {
    let doc = json::parse(line).map_err(|e| (0, WireError::new(ErrorCode::BadRequest, e)))?;
    let id = doc
        .get("id")
        .and_then(Value::as_f64)
        .filter(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| {
            (
                0,
                WireError::new(ErrorCode::BadRequest, "missing or non-integer `id`"),
            )
        })?;
    let op = doc.get("op").and_then(Value::as_str).ok_or_else(|| {
        (
            id,
            WireError::new(ErrorCode::BadRequest, "missing `op` string"),
        )
    })?;
    let req = match op {
        "ping" => WireRequest::Ping,
        "stats" => WireRequest::Stats,
        "metrics" => WireRequest::Metrics,
        "shutdown" => WireRequest::Shutdown,
        "cancel" => WireRequest::Cancel {
            target: field_u64(&doc, "target").map_err(|e| (id, e))?,
        },
        "register_tech" => {
            let base = match doc.get("base").and_then(Value::as_str) {
                Some("1p2um") | None => TechBase::OnePoint2um,
                Some("0p5um") => TechBase::ZeroPoint5um,
                Some(other) => {
                    return Err((
                        id,
                        WireError::new(
                            ErrorCode::BadRequest,
                            format!("unknown base technology `{other}` (want `1p2um` or `0p5um`)"),
                        ),
                    ))
                }
            };
            let overrides = TechOverrides {
                name: doc.get("name").and_then(Value::as_str).map(str::to_string),
                vdd: opt_finite(&doc, "vdd").map_err(|e| (id, e))?,
                vss: opt_finite(&doc, "vss").map_err(|e| (id, e))?,
                lmin: opt_finite(&doc, "lmin").map_err(|e| (id, e))?,
                wmin: opt_finite(&doc, "wmin").map_err(|e| (id, e))?,
            };
            WireRequest::RegisterTech { base, overrides }
        }
        "register_calibration" => {
            let table = doc.get("table").ok_or_else(|| {
                (
                    id,
                    WireError::new(ErrorCode::BadRequest, "missing `table` object"),
                )
            })?;
            let table = ape_calib::Calibration::from_json(table).map_err(|e| {
                (
                    id,
                    WireError::new(ErrorCode::BadRequest, format!("bad calibration table: {e}")),
                )
            })?;
            WireRequest::RegisterCalibration { table }
        }
        "design" => {
            let topology = parse_topology(doc.get("topology")).map_err(|e| (id, e))?;
            let spec = parse_spec(doc.get("spec")).map_err(|e| (id, e))?;
            WireRequest::Design {
                topology,
                spec,
                technology: parse_tech_ref(&doc).map_err(|e| (id, e))?,
                calibration: parse_fp_ref(&doc, "calibration").map_err(|e| (id, e))?,
                deadline_ms: parse_deadline(&doc).map_err(|e| (id, e))?,
            }
        }
        "estimate" => {
            let deck = doc
                .get("deck")
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    (
                        id,
                        WireError::new(ErrorCode::BadRequest, "missing `deck` string"),
                    )
                })?
                .to_string();
            let output = doc
                .get("output")
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    (
                        id,
                        WireError::new(ErrorCode::BadRequest, "missing `output` node name"),
                    )
                })?
                .to_string();
            WireRequest::Estimate {
                deck,
                output,
                technology: parse_tech_ref(&doc).map_err(|e| (id, e))?,
                calibration: parse_fp_ref(&doc, "calibration").map_err(|e| (id, e))?,
                deadline_ms: parse_deadline(&doc).map_err(|e| (id, e))?,
            }
        }
        other => {
            return Err((
                id,
                WireError::new(ErrorCode::BadRequest, format!("unknown op `{other}`")),
            ))
        }
    };
    Ok((id, req))
}

fn field_u64(doc: &Value, key: &str) -> Result<u64, WireError> {
    doc.get(key)
        .and_then(Value::as_f64)
        .filter(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("missing or non-integer `{key}`"),
            )
        })
}

fn opt_finite(doc: &Value, key: &str) -> Result<Option<f64>, WireError> {
    match doc.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .filter(|v| v.is_finite())
            .map(Some)
            .ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, format!("`{key}` must be finite"))
            }),
    }
}

fn parse_deadline(doc: &Value) -> Result<Option<u64>, WireError> {
    match doc.get("deadline_ms") {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .filter(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0)
            .map(|v| Some(v as u64))
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    "`deadline_ms` must be a non-negative integer",
                )
            }),
    }
}

/// `technology` on the wire is the hex string `register_tech` returned
/// (`"0x…"`); decimal integers are accepted too.
fn parse_tech_ref(doc: &Value) -> Result<Option<u64>, WireError> {
    parse_fp_ref(doc, "technology")
}

/// A fingerprint reference field (`technology`, `calibration`): the hex
/// string the registration op returned (`"0x…"`), or a decimal integer.
fn parse_fp_ref(doc: &Value, key: &str) -> Result<Option<u64>, WireError> {
    match doc.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(text)) => {
            let digits = text.strip_prefix("0x").unwrap_or(text);
            u64::from_str_radix(digits, 16).map(Some).map_err(|_| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("`{key}` is not a fingerprint: `{text}`"),
                )
            })
        }
        Some(v) => v
            .as_f64()
            .filter(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0)
            .map(|v| Some(v as u64))
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("`{key}` must be a fingerprint string or integer"),
                )
            }),
    }
}

fn parse_topology(v: Option<&Value>) -> Result<OpAmpTopology, WireError> {
    let v = v.ok_or_else(|| WireError::new(ErrorCode::BadRequest, "missing `topology`"))?;
    let mirror = match v.get("mirror").and_then(Value::as_str) {
        Some("simple") | None => MirrorTopology::Simple,
        Some("wilson") => MirrorTopology::Wilson,
        Some("cascode") => MirrorTopology::Cascode,
        Some(other) => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!("unknown mirror `{other}` (want simple|wilson|cascode)"),
            ))
        }
    };
    let buffer = v
        .get("buffer")
        .map(|b| {
            b.as_bool().ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "`topology.buffer` must be a bool")
            })
        })
        .transpose()?
        .unwrap_or(false);
    Ok(OpAmpTopology::miller(mirror, buffer))
}

fn parse_spec(v: Option<&Value>) -> Result<OpAmpSpec, WireError> {
    let v = v.ok_or_else(|| WireError::new(ErrorCode::BadRequest, "missing `spec`"))?;
    let req = |key: &str| -> Result<f64, WireError> {
        v.get(key)
            .and_then(Value::as_f64)
            .filter(|x| x.is_finite())
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("`spec.{key}` must be a finite number"),
                )
            })
    };
    Ok(OpAmpSpec {
        gain: req("gain")?,
        ugf_hz: req("ugf_hz")?,
        area_max_m2: req("area_max_m2")?,
        ibias: req("ibias")?,
        zout_ohm: opt_finite(v, "zout_ohm")?,
        cl: req("cl")?,
    })
}

/// Renders the success envelope for `id`.
pub fn ok_response(id: u64, result: Value) -> String {
    obj([
        ("id", Value::Num(id as f64)),
        ("ok", Value::Bool(true)),
        ("result", result),
    ])
    .render()
}

/// Renders the error envelope for `id`.
pub fn err_response(id: u64, err: &WireError) -> String {
    obj([
        ("id", Value::Num(id as f64)),
        ("ok", Value::Bool(false)),
        (
            "error",
            obj([
                ("code", s(err.code.as_str())),
                ("status", Value::Num(f64::from(err.code.status()))),
                ("message", s(&err.message)),
                ("retryable", Value::Bool(err.code.retryable())),
            ]),
        ),
    ])
    .render()
}

/// Formats a technology fingerprint the way the protocol spells it.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:#018x}")
}

/// The `design` result payload. Every float renders in shortest-roundtrip
/// form, so a client parsing with a correctly-rounded `strtod` recovers
/// the estimator's exact bits.
pub fn design_result(amp: &OpAmp) -> Value {
    let p = &amp.perf;
    obj([
        ("itail", Value::Num(amp.itail)),
        ("i2", Value::Num(amp.i2)),
        ("ibuf", Value::Num(amp.ibuf)),
        ("cc", Value::Num(amp.cc)),
        ("rz", Value::Num(amp.rz)),
        (
            "perf",
            obj([
                ("dc_gain", opt(p.dc_gain)),
                ("ugf_hz", opt(p.ugf_hz)),
                ("bw_hz", opt(p.bw_hz)),
                ("power_w", Value::Num(p.power_w)),
                ("gate_area_m2", Value::Num(p.gate_area_m2)),
                ("zout_ohm", opt(p.zout_ohm)),
                ("cmrr_db", opt(p.cmrr_db)),
                ("slew_v_per_s", opt(p.slew_v_per_s)),
                ("ibias_a", opt(p.ibias_a)),
            ]),
        ),
    ])
}

/// The `estimate` result payload.
pub fn estimate_result(est: &NetlistEstimate) -> Value {
    let p = &est.perf;
    obj([
        ("phase_margin_deg", opt(est.phase_margin_deg)),
        (
            "poles",
            Value::Arr(
                est.poles
                    .iter()
                    .map(|c| obj([("re", Value::Num(c.re)), ("im", Value::Num(c.im))]))
                    .collect(),
            ),
        ),
        (
            "perf",
            obj([
                ("dc_gain", opt(p.dc_gain)),
                ("ugf_hz", opt(p.ugf_hz)),
                ("bw_hz", opt(p.bw_hz)),
                ("power_w", Value::Num(p.power_w)),
                ("gate_area_m2", Value::Num(p.gate_area_m2)),
                ("zout_ohm", opt(p.zout_ohm)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn parses_a_design_request() {
        let line = r#"{"op":"design","id":7,"topology":{"mirror":"wilson","buffer":true},
            "spec":{"gain":200,"ugf_hz":5e6,"area_max_m2":5e-9,"ibias":1e-5,"cl":1e-11},
            "deadline_ms":250}"#
            .replace('\n', " ");
        let (id, req) = parse_request(&line).unwrap();
        assert_eq!(id, 7);
        match req {
            WireRequest::Design {
                topology,
                spec,
                technology,
                calibration,
                deadline_ms,
            } => {
                assert_eq!(topology.current_source, MirrorTopology::Wilson);
                assert!(topology.buffer);
                assert_eq!(spec.gain, 200.0);
                assert_eq!(technology, None);
                assert_eq!(calibration, None);
                assert_eq!(deadline_ms, Some(250));
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn recovers_the_id_on_field_errors() {
        let (id, err) = parse_request(r#"{"op":"design","id":9}"#).unwrap_err();
        assert_eq!(id, 9);
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn tech_ref_round_trips_through_hex() {
        let fp = 0x0123_4567_89ab_cdefu64;
        let hex = fingerprint_hex(fp);
        let line =
            format!(r#"{{"op":"estimate","id":1,"deck":"x","output":"n1","technology":"{hex}"}}"#);
        let (_, req) = parse_request(&line).unwrap();
        match req {
            WireRequest::Estimate { technology, .. } => assert_eq!(technology, Some(fp)),
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn unknown_op_is_typed() {
        let (_, err) = parse_request(r#"{"op":"frobnicate","id":3}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn error_codes_have_stable_statuses() {
        assert_eq!(ErrorCode::Overloaded.status(), 429);
        assert_eq!(ErrorCode::Oversized.status(), 413);
        assert!(ErrorCode::Overloaded.retryable());
        assert!(!ErrorCode::BadRequest.retryable());
    }
}
