//! A small blocking client for the daemon's NDJSON protocol, used by the
//! bench load generator, the `ape-check` serve driver, and integration
//! tests. Supports pipelining: `send` many, then `recv` in order.

use crate::json::{self, obj, Value};
use crate::proto::{ErrorCode, WireError};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response envelope, decoded.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The echoed request id.
    pub id: u64,
    /// `result` on success, the typed error otherwise.
    pub outcome: Result<Value, ReplyError>,
}

/// The decoded error object of a failed response.
#[derive(Debug, Clone)]
pub struct ReplyError {
    /// Protocol error code string (e.g. `"overloaded"`).
    pub code: String,
    /// HTTP-flavoured status.
    pub status: u16,
    /// Human-readable message.
    pub message: String,
    /// Whether the server marked the failure retryable.
    pub retryable: bool,
}

impl std::fmt::Display for ReplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}): {}", self.code, self.status, self.message)
    }
}

/// A blocking NDJSON client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Sets a read timeout for `recv`.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(t)
    }

    /// Sends one request built from `op` plus extra fields; returns the id
    /// assigned to it. Does not wait for the response.
    pub fn send(&mut self, op: &str, mut fields: Value) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        if let Value::Obj(m) = &mut fields {
            m.insert("op".to_string(), Value::Str(op.to_string()));
            m.insert("id".to_string(), Value::Num(id as f64));
        }
        writeln!(self.writer, "{}", fields.render())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Sends a raw line verbatim (protocol robustness tests).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Receives the next response line.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        decode_reply(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one request and waits for one response — only correct when
    /// nothing else is in flight on this connection.
    pub fn call(&mut self, op: &str, fields: Value) -> io::Result<Reply> {
        self.send(op, fields)?;
        self.recv()
    }

    /// Registers a calibration table (its canonical JSON document) and
    /// returns the fingerprint string subsequent requests pass as their
    /// `calibration` field.
    pub fn register_calibration(&mut self, table: &ape_calib::Calibration) -> io::Result<String> {
        let reply = self.call("register_calibration", obj([("table", table.to_json())]))?;
        match reply.outcome {
            Ok(result) => result
                .get("calibration")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "registration reply missing `calibration`",
                    )
                }),
            Err(e) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("register_calibration failed: {e}"),
            )),
        }
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> io::Result<bool> {
        let reply = self.call("ping", obj([]))?;
        Ok(matches!(
            reply.outcome.as_ref().ok().and_then(|r| r.get("pong")),
            Some(Value::Bool(true))
        ))
    }

    /// Shuts the connection's write half, simulating a client vanishing
    /// mid-request (the read half stays open for observing).
    pub fn shutdown_write(&self) -> io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }
}

/// Decodes one response line into a [`Reply`].
pub fn decode_reply(line: &str) -> Result<Reply, String> {
    let doc = json::parse(line)?;
    let id = doc
        .get("id")
        .and_then(Value::as_f64)
        .map(|v| v as u64)
        .ok_or("response missing `id`")?;
    let ok = doc
        .get("ok")
        .and_then(Value::as_bool)
        .ok_or("response missing `ok`")?;
    if ok {
        let result = doc.get("result").cloned().unwrap_or(Value::Null);
        return Ok(Reply {
            id,
            outcome: Ok(result),
        });
    }
    let err = doc.get("error").ok_or("failed response missing `error`")?;
    Ok(Reply {
        id,
        outcome: Err(ReplyError {
            code: err
                .get("code")
                .and_then(Value::as_str)
                .unwrap_or("internal")
                .to_string(),
            status: err
                .get("status")
                .and_then(Value::as_f64)
                .map(|v| v as u16)
                .unwrap_or(500),
            message: err
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            retryable: err
                .get("retryable")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        }),
    })
}

impl From<&WireError> for ReplyError {
    fn from(e: &WireError) -> Self {
        ReplyError {
            code: e.code.as_str().to_string(),
            status: e.code.status(),
            message: e.message.clone(),
            retryable: e.code.retryable(),
        }
    }
}

/// Convenience: checks a decoded error against a typed [`ErrorCode`].
pub fn is_code(err: &ReplyError, code: ErrorCode) -> bool {
    err.code == code.as_str()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn decodes_both_envelopes() {
        let ok = decode_reply(r#"{"id":4,"ok":true,"result":{"pong":true}}"#).unwrap();
        assert_eq!(ok.id, 4);
        assert!(ok.outcome.is_ok());

        let err = decode_reply(
            r#"{"id":5,"ok":false,"error":{"code":"overloaded","status":429,"message":"x","retryable":true}}"#,
        )
        .unwrap();
        let e = err.outcome.unwrap_err();
        assert!(is_code(&e, ErrorCode::Overloaded));
        assert_eq!(e.status, 429);
        assert!(e.retryable);
    }
}
