//! `ape-serve`: a persistent multi-tenant estimation daemon over
//! [`ape-farm`](ape_farm).
//!
//! The paper's pitch is that APE makes analog performance estimation cheap
//! enough to sit in a synthesis inner loop. A per-process worker pool whose
//! memos die with the sweep wastes that cheapness across *clients*; this
//! crate keeps a resident [`Farm`](ape_farm::Farm) — with the pool-wide
//! shared estimation graph — behind a line-delimited JSON protocol on TCP,
//! so many clients amortize one warm estimator.
//!
//! - [`proto`] — the wire grammar: ops, envelopes, typed error codes.
//! - [`server`] — the daemon: accept loop, admission control,
//!   cancellation tree, `/metrics`.
//! - [`client`] — a small blocking client (bench, checks, tests).
//! - [`json`] — the JSON value/parser/renderer whose float output
//!   round-trips bit-exactly (shared with calibration persistence; lives
//!   in `ape-calib`, re-exported here).
//!
//! # A one-minute session
//!
//! ```
//! use ape_serve::{client::Client, json::{obj, n, s}, Server, ServerConfig};
//! use ape_netlist::Technology;
//!
//! let server = Server::bind("127.0.0.1:0", Technology::default_1p2um(),
//!     ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn().unwrap();
//!
//! let mut c = Client::connect(addr).unwrap();
//! assert!(c.ping().unwrap());
//! let reply = c.call("design", obj([
//!     ("topology", obj([("mirror", s("simple"))])),
//!     ("spec", obj([
//!         ("gain", n(200.0)), ("ugf_hz", n(5e6)), ("area_max_m2", n(20e-9)),
//!         ("ibias", n(1e-5)), ("cl", n(1e-11)),
//!     ])),
//! ])).unwrap();
//! let result = reply.outcome.unwrap();
//! assert!(result.get("perf").is_some());
//! handle.stop();
//! ```

pub mod client;
pub mod proto;
pub mod server;

pub use ape_calib::json;

pub use client::{Client, Reply, ReplyError};
pub use proto::{ErrorCode, WireError, WireRequest};
pub use server::{serve_stream, standalone_state, Server, ServerConfig, ServerHandle, ServerState};
