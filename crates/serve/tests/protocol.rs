// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! End-to-end protocol behaviour over real TCP connections: happy paths,
//! hostile input, admission control, cancellation, and disconnects. Every
//! hostile case must produce a typed error (or clean cancellation) and
//! leave the server answering `ping` — never a wedged worker.

use ape_netlist::Technology;
use ape_serve::client::{is_code, Client};
use ape_serve::json::{n, obj, s, Value};
use ape_serve::{ErrorCode, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", Technology::default_1p2um(), config)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn design_fields(gain: f64) -> Value {
    obj([
        ("topology", obj([("mirror", s("simple"))])),
        (
            "spec",
            obj([
                ("gain", n(gain)),
                ("ugf_hz", n(5e6)),
                ("area_max_m2", n(20e-9)),
                ("ibias", n(1e-5)),
                ("cl", n(1e-11)),
            ]),
        ),
    ])
}

#[test]
fn ping_stats_metrics_round_trip() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c.ping().unwrap());

    let stats = c.call("stats", obj([])).unwrap().outcome.unwrap();
    assert!(stats.get("farm").is_some());
    assert!(stats.get("serve").is_some());

    let metrics = c.call("metrics", obj([])).unwrap().outcome.unwrap();
    let text = metrics.get("text").and_then(Value::as_str).unwrap();
    assert!(text.contains("ape_serve_requests"), "{text}");
    server.stop();
}

#[test]
fn design_round_trips() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let reply = c.call("design", design_fields(200.0)).unwrap();
    let result = reply.outcome.expect("design ok");
    let gain = result
        .get("perf")
        .and_then(|p| p.get("dc_gain"))
        .and_then(Value::as_f64)
        .expect("dc_gain");
    assert!(gain.abs() >= 150.0);
    assert!(result.get("cc").and_then(Value::as_f64).unwrap() > 0.0);
    server.stop();
}

#[test]
fn estimate_round_trips_and_rejects_bad_decks() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let deck = "* rc\nV1 in 0 DC 1 AC 1\nR1 in out 1k\nC1 out 0 1p\n.end\n";
    let reply = c
        .call("estimate", obj([("deck", s(deck)), ("output", s("out"))]))
        .unwrap();
    let result = reply.outcome.expect("estimate ok");
    assert!(result.get("perf").is_some());

    // Unknown output node: typed estimator error.
    let bad = c
        .call("estimate", obj([("deck", s(deck)), ("output", s("nope"))]))
        .unwrap();
    assert!(is_code(
        &bad.outcome.unwrap_err(),
        ErrorCode::EstimatorError
    ));

    // Garbage deck: typed estimator error, server still alive.
    let bad = c
        .call(
            "estimate",
            obj([("deck", s("Q1 what is this")), ("output", s("x"))]),
        )
        .unwrap();
    assert!(is_code(
        &bad.outcome.unwrap_err(),
        ErrorCode::EstimatorError
    ));
    assert!(c.ping().unwrap());
    server.stop();
}

#[test]
fn tenants_register_and_select() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let reply = c
        .call("register_tech", obj([("base", s("0p5um"))]))
        .unwrap();
    let fp = reply
        .outcome
        .unwrap()
        .get("technology")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let mut fields = design_fields(200.0);
    if let Value::Obj(m) = &mut fields {
        m.insert("technology".to_string(), Value::Str(fp));
    }
    let tenant = c
        .call("design", fields)
        .unwrap()
        .outcome
        .expect("tenant ok");
    let default = c
        .call("design", design_fields(200.0))
        .unwrap()
        .outcome
        .expect("default ok");
    // Different supply rails → different designs.
    assert_ne!(tenant.render(), default.render());

    // A second connection sees the same tenant registry.
    let mut c2 = Client::connect(server.addr()).unwrap();
    let mut fields = design_fields(200.0);
    if let Value::Obj(m) = &mut fields {
        m.insert(
            "technology".to_string(),
            Value::Str(format!(
                "{:#018x}",
                Technology::default_0p5um().fingerprint()
            )),
        );
    }
    let again = c2
        .call("design", fields)
        .unwrap()
        .outcome
        .expect("cross-conn tenant");
    assert_eq!(tenant.render(), again.render());
    server.stop();
}

#[test]
fn unknown_technology_is_typed() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let mut fields = design_fields(200.0);
    if let Value::Obj(m) = &mut fields {
        m.insert("technology".to_string(), s("0xdeadbeefdeadbeef"));
    }
    let reply = c.call("design", fields).unwrap();
    let err = reply.outcome.unwrap_err();
    assert!(is_code(&err, ErrorCode::UnknownTechnology));
    assert_eq!(err.status, 404);
    assert!(c.ping().unwrap());
    server.stop();
}

#[test]
fn hostile_lines_get_typed_errors_and_never_wedge() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    for line in [
        "garbage",
        "{\"op\":",
        "{\"op\":\"design\"}",
        "{\"id\":1}",
        "{\"op\":\"nope\",\"id\":2}",
        "[1,2,3]",
        "{\"op\":\"design\",\"id\":3,\"topology\":{\"mirror\":\"bogus\"},\"spec\":{}}",
        "\u{0}\u{1}\u{2}",
    ] {
        c.send_raw(line).unwrap();
        let reply = c.recv().unwrap();
        let err = reply.outcome.unwrap_err();
        assert!(
            is_code(&err, ErrorCode::BadRequest),
            "line {line:?} → {err}"
        );
    }
    assert!(c.ping().unwrap());
    server.stop();
}

#[test]
fn oversized_line_resyncs() {
    let config = ServerConfig {
        max_line_bytes: 4096,
        ..ServerConfig::default()
    };
    let server = start(config);
    let mut c = Client::connect(server.addr()).unwrap();
    let big = format!(
        "{{\"op\":\"ping\",\"id\":1,\"pad\":\"{}\"}}",
        "x".repeat(10_000)
    );
    c.send_raw(&big).unwrap();
    let reply = c.recv().unwrap();
    let err = reply.outcome.unwrap_err();
    assert!(is_code(&err, ErrorCode::Oversized));
    assert_eq!(err.status, 413);
    // The stream resynced at the newline: the next request works.
    assert!(c.ping().unwrap());
    server.stop();
}

#[test]
fn zero_deadline_reports_deadline_exceeded() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let mut fields = design_fields(321.5);
    if let Value::Obj(m) = &mut fields {
        m.insert("deadline_ms".to_string(), n(0.0));
    }
    let reply = c.call("design", fields).unwrap();
    // A zero deadline can still win the race on a warm memo hit, so an
    // Ok outcome is acceptable; an error must be the typed deadline kind.
    if let Err(e) = reply.outcome {
        assert!(
            is_code(&e, ErrorCode::DeadlineExceeded) || is_code(&e, ErrorCode::Cancelled),
            "unexpected error: {e}"
        );
    }
    assert!(c.ping().unwrap());
    server.stop();
}

#[test]
fn cancel_of_unknown_id_answers_false() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let reply = c.call("cancel", obj([("target", n(9999.0))])).unwrap();
    assert_eq!(
        reply.outcome.unwrap().get("cancelled"),
        Some(&Value::Bool(false))
    );
    server.stop();
}

#[test]
fn connection_budget_rejects_with_429() {
    let config = ServerConfig {
        inflight_per_conn: 0,
        ..ServerConfig::default()
    };
    let server = start(config);
    let mut c = Client::connect(server.addr()).unwrap();
    let reply = c.call("design", design_fields(200.0)).unwrap();
    let err = reply.outcome.unwrap_err();
    assert!(is_code(&err, ErrorCode::Overloaded));
    assert_eq!(err.status, 429);
    assert!(err.retryable);
    // Immediate ops are not budgeted.
    assert!(c.ping().unwrap());
    server.stop();
}

#[test]
fn mid_request_disconnect_cancels_cleanly() {
    let server = start(ServerConfig::default());
    {
        let mut c = Client::connect(server.addr()).unwrap();
        // Pipeline a burst, then vanish without reading responses.
        for i in 0..8 {
            c.send("design", design_fields(150.0 + f64::from(i)))
                .unwrap();
        }
        c.shutdown_write().unwrap();
        // Dropping the client closes the read half too.
    }
    // The server must still answer promptly on a fresh connection.
    let mut c = Client::connect(server.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    assert!(c.ping().unwrap());
    server.stop();
}

#[test]
fn http_metrics_and_healthz_on_the_same_port() {
    let server = start(ServerConfig::default());
    // Warm one request so counters exist.
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c.ping().unwrap());

    let mut http = TcpStream::connect(server.addr()).unwrap();
    write!(http, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.contains("ape_serve_requests"), "{body}");

    let mut http = TcpStream::connect(server.addr()).unwrap();
    write!(http, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.contains("200 OK"));

    let mut http = TcpStream::connect(server.addr()).unwrap();
    write!(http, "GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.contains("404"));
    server.stop();
}

#[test]
fn shutdown_op_stops_the_server() {
    let server = start(ServerConfig::default());
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    let reply = c.call("shutdown", obj([])).unwrap();
    assert_eq!(
        reply.outcome.unwrap().get("stopping"),
        Some(&Value::Bool(true))
    );
    assert!(server.state().is_shutting_down());
    server.stop();
    // New connections are refused or immediately closed after the accept
    // loop exits; either way no fresh work is accepted.
    std::thread::sleep(Duration::from_millis(50));
    if let Ok(mut late) = Client::connect(addr) {
        late.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        assert!(late.ping().is_err());
    }
}

#[test]
fn pipelined_responses_preserve_request_order() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let ids: Vec<u64> = (0..10)
        .map(|i| {
            c.send("design", design_fields(160.0 + f64::from(i)))
                .unwrap()
        })
        .collect();
    let mut got = Vec::new();
    for _ in &ids {
        let reply = c.recv().unwrap();
        assert!(reply.outcome.is_ok());
        got.push(reply.id);
    }
    assert_eq!(ids, got, "farm-backed responses arrive in request order");
    server.stop();
}

#[test]
fn calibration_round_trip_over_the_wire() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();

    // Baseline, uncalibrated.
    let plain = c
        .call("design", design_fields(200.0))
        .unwrap()
        .outcome
        .expect("uncalibrated design ok");
    let plain_gain = plain
        .get("perf")
        .and_then(|p| p.get("dc_gain"))
        .and_then(Value::as_f64)
        .expect("dc_gain present");

    // Register a table that scales l3.opamp dc_gain by exactly 1.25.
    let tech = Technology::default_1p2um();
    let mut table = ape_calib::Calibration::identity(tech.fingerprint(), "wire");
    table.set("l3.opamp", "dc_gain", 1.25, &[]).unwrap();
    let fp_hex = c.register_calibration(&table).expect("registration ok");
    assert_eq!(fp_hex, format!("{:#018x}", table.fingerprint()));

    // The same design, calibrated: one f64 multiply by the factor.
    let mut fields = design_fields(200.0);
    if let Value::Obj(m) = &mut fields {
        m.insert("calibration".to_string(), Value::Str(fp_hex.clone()));
    }
    let calibrated = c
        .call("design", fields)
        .unwrap()
        .outcome
        .expect("calibrated design ok");
    let cal_gain = calibrated
        .get("perf")
        .and_then(|p| p.get("dc_gain"))
        .and_then(Value::as_f64)
        .expect("calibrated dc_gain present");
    assert_eq!(cal_gain, plain_gain * 1.25, "correction factor applied");

    // A second connection sees the same calibration registry.
    let mut c2 = Client::connect(server.addr()).unwrap();
    let mut fields = design_fields(200.0);
    if let Value::Obj(m) = &mut fields {
        m.insert("calibration".to_string(), Value::Str(fp_hex));
    }
    let again = c2
        .call("design", fields)
        .unwrap()
        .outcome
        .expect("cross-conn calibrated design");
    assert_eq!(calibrated.render(), again.render());

    // Unknown fingerprints and cross-technology tables are typed errors.
    let mut fields = design_fields(200.0);
    if let Value::Obj(m) = &mut fields {
        m.insert("calibration".to_string(), s("0xdeadbeefdeadbeef"));
    }
    let err = c.call("design", fields).unwrap().outcome.unwrap_err();
    assert!(is_code(&err, ErrorCode::UnknownCalibration), "{err}");

    let foreign = ape_calib::Calibration::identity(0x1234, "wrong-tech");
    let foreign_fp = c.register_calibration(&foreign).expect("foreign registers");
    let mut fields = design_fields(200.0);
    if let Value::Obj(m) = &mut fields {
        m.insert("calibration".to_string(), Value::Str(foreign_fp));
    }
    let err = c.call("design", fields).unwrap().outcome.unwrap_err();
    assert!(is_code(&err, ErrorCode::CalibrationMismatch), "{err}");

    assert!(c.ping().unwrap(), "server still answers after typed errors");
    server.stop();
}
