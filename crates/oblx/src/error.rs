//! Error type for the synthesis engine.

use std::error::Error;
use std::fmt;

/// Errors produced while setting up or running a synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OblxError {
    /// A candidate netlist could not be constructed.
    Template(String),
    /// The final audit simulation failed outright.
    AuditFailed(String),
    /// The synthesis specification is malformed.
    BadSpec(String),
    /// A design point does not fit the topology's variable table
    /// (wrong dimension or an unknown variable name).
    BadPoint(String),
    /// The run was abandoned at a temperature-plateau boundary because the
    /// thread-current cancellation token fired (batch shutdown or an
    /// expired per-job deadline).
    Cancelled,
}

impl fmt::Display for OblxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OblxError::Template(m) => write!(f, "candidate template failed: {m}"),
            OblxError::AuditFailed(m) => write!(f, "final audit failed: {m}"),
            OblxError::BadSpec(m) => write!(f, "bad synthesis spec: {m}"),
            OblxError::BadPoint(m) => write!(f, "bad design point: {m}"),
            OblxError::Cancelled => {
                write!(f, "synthesis cancelled (token fired or deadline expired)")
            }
        }
    }
}

impl Error for OblxError {}

#[cfg(test)]
mod tests {
    #[test]
    fn traits() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<super::OblxError>();
    }
}
