//! The fixed circuit topology a synthesis run sizes.
//!
//! ASTRX/OBLX sizes a *given* topology (paper §3: "the circuit topology is
//! already selected"). This module instantiates the two-stage Miller
//! op-amp template from a raw [`DesignPoint`] — no estimator involvement,
//! exactly as the stand-alone tool would work.

use crate::error::OblxError;
use crate::vars::DesignPoint;
use ape_core::basic::MirrorTopology;
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use ape_netlist::{Circuit, MosGeometry, MosPolarity, NodeId, SourceWaveform, Technology};

/// Channel length of the bias branch devices.
pub const L_BIAS: f64 = 2.4e-6;

/// Geometry of the template's bias reference diode: sized deterministically
/// for the spec's reference current at a 0.35 V overdrive (so mirror ratios
/// expressed by the searched widths stay near unity). Not a search variable.
pub fn bias_diode_geometry(tech: &Technology, ibias: f64) -> MosGeometry {
    let kp = tech.nmos().map(|c| c.kp).unwrap_or(73e-6);
    let aspect = (2.0 * ibias / (kp * 0.35 * 0.35)).max(1e-3);
    let l = (tech.wmin / aspect).clamp(L_BIAS, 60e-6);
    MosGeometry::new((aspect * l).max(tech.wmin), l)
}

/// Builds the open-loop evaluation testbench for a candidate point:
/// differential AC drive (±½), supply `VDD`, the sized amplifier, and the
/// load capacitor. Returns the circuit and its output node.
///
/// # Errors
///
/// [`OblxError::Template`] if the point produces an invalid netlist
/// (non-positive geometry after clamping, etc.).
pub fn build_candidate(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    point: &DesignPoint,
) -> Result<(Circuit, NodeId), OblxError> {
    let err = |e: ape_netlist::NetlistError| OblxError::Template(e.to_string());
    let n_name = tech
        .nmos()
        .ok_or_else(|| OblxError::Template("missing NMOS card".into()))?
        .name
        .clone();
    let p_name = tech
        .pmos()
        .ok_or_else(|| OblxError::Template("missing PMOS card".into()))?
        .name
        .clone();

    let g = |i: usize, l: f64| MosGeometry::new(point.values[i], l);
    let needed = if topology.buffer { 10 } else { 8 };
    if point.values.len() != needed {
        return Err(OblxError::Template(format!(
            "design point has {} values, template needs {needed}",
            point.values.len()
        )));
    }
    let l_pair = point.values[1];
    let l_2 = point.values[4];
    let cc = point.values[7];

    let mut ckt = Circuit::new("oblx-candidate");
    let vdd = ckt.node("vdd");
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    let out = ckt.node("out");
    let bias = ckt.node("bias");
    let tail = ckt.node("tail");
    let outb = ckt.node("outb");
    let o1 = ckt.node("o1");
    let o2 = if topology.buffer { ckt.node("o2") } else { out };

    ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)
        .map_err(err)?;
    let vcm = tech.vdd / 2.0;
    ckt.add_vsource("VINP", inp, Circuit::GROUND, vcm, 0.5, SourceWaveform::Dc)
        .map_err(err)?;
    ckt.add_vsource("VINN", inn, Circuit::GROUND, vcm, -0.5, SourceWaveform::Dc)
        .map_err(err)?;
    ckt.add_idc("IB", vdd, bias, spec.ibias).map_err(err)?;

    if topology.current_source == MirrorTopology::Cascode {
        return Err(OblxError::Template(
            "the synthesis template supports Simple and Wilson bias mirrors              (the paper's Table 1 topologies); use the APE level directly for              cascode tails"
                .into(),
        ));
    }
    let gnd = Circuit::GROUND;
    // Bias network.
    let ref_gate = match topology.current_source {
        MirrorTopology::Simple | MirrorTopology::Cascode => {
            ckt.add_mosfet(
                "MB1",
                bias,
                bias,
                gnd,
                gnd,
                MosPolarity::Nmos,
                &n_name,
                bias_diode_geometry(tech, spec.ibias),
            )
            .map_err(err)?;
            ckt.add_mosfet(
                "MTAIL",
                tail,
                bias,
                gnd,
                gnd,
                MosPolarity::Nmos,
                &n_name,
                g(6, L_BIAS),
            )
            .map_err(err)?;
            bias
        }
        MirrorTopology::Wilson => {
            let y = ckt.node("wy");
            ckt.add_mosfet(
                "MB1",
                bias,
                y,
                gnd,
                gnd,
                MosPolarity::Nmos,
                &n_name,
                bias_diode_geometry(tech, spec.ibias),
            )
            .map_err(err)?;
            ckt.add_mosfet(
                "MWD",
                y,
                y,
                gnd,
                gnd,
                MosPolarity::Nmos,
                &n_name,
                g(6, L_BIAS),
            )
            .map_err(err)?;
            ckt.add_mosfet(
                "MWC",
                tail,
                bias,
                y,
                gnd,
                MosPolarity::Nmos,
                &n_name,
                g(6, L_BIAS),
            )
            .map_err(err)?;
            y
        }
    };
    // Input pair (inp on M2 per the template's non-inverting convention).
    ckt.add_mosfet(
        "M1",
        outb,
        inn,
        tail,
        gnd,
        MosPolarity::Nmos,
        &n_name,
        g(0, l_pair),
    )
    .map_err(err)?;
    ckt.add_mosfet(
        "M2",
        o1,
        inp,
        tail,
        gnd,
        MosPolarity::Nmos,
        &n_name,
        g(0, l_pair),
    )
    .map_err(err)?;
    // Mirror load.
    ckt.add_mosfet(
        "M3",
        outb,
        outb,
        vdd,
        vdd,
        MosPolarity::Pmos,
        &p_name,
        g(2, l_pair),
    )
    .map_err(err)?;
    ckt.add_mosfet(
        "M4",
        o1,
        outb,
        vdd,
        vdd,
        MosPolarity::Pmos,
        &p_name,
        g(2, l_pair),
    )
    .map_err(err)?;
    // Second stage.
    ckt.add_mosfet(
        "M6",
        o2,
        o1,
        vdd,
        vdd,
        MosPolarity::Pmos,
        &p_name,
        g(3, l_2),
    )
    .map_err(err)?;
    ckt.add_mosfet(
        "M7",
        o2,
        ref_gate,
        gnd,
        gnd,
        MosPolarity::Nmos,
        &n_name,
        g(5, l_2),
    )
    .map_err(err)?;
    // Compensation (no nulling resistor: the synthesis engine searches raw
    // topology as ASTRX would be given it).
    ckt.add_capacitor("CC", o1, o2, cc).map_err(err)?;
    // Buffer.
    if topology.buffer {
        ckt.add_mosfet(
            "MBUF",
            vdd,
            o2,
            out,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            g(8, L_BIAS),
        )
        .map_err(err)?;
        ckt.add_mosfet(
            "MSINK",
            out,
            ref_gate,
            gnd,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            g(9, L_BIAS),
        )
        .map_err(err)?;
    }
    ckt.add_capacitor("CL", out, Circuit::GROUND, spec.cl)
        .map_err(err)?;
    Ok((ckt, out))
}

/// Total MOS gate area of a candidate, square metres (closed form — no
/// netlist needed, used by the cost function on every evaluation).
pub fn candidate_area(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    point: &DesignPoint,
) -> f64 {
    let v = &point.values;
    let l_pair = v[1];
    let l_2 = v[4];
    let diode = bias_diode_geometry(tech, spec.ibias);
    let mut area = 2.0 * v[0] * l_pair      // pair
        + 2.0 * v[2] * l_pair               // load
        + v[3] * l_2                        // M6
        + v[5] * l_2                        // M7
        + diode.gate_area()                 // bias diode
        + v[6] * L_BIAS; // tail
    if topology.current_source == MirrorTopology::Wilson {
        area += v[6] * L_BIAS; // second Wilson device
    }
    if topology.buffer {
        area += v[8] * L_BIAS + v[9] * L_BIAS;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::{blind_center, variables};

    fn topo() -> OpAmpTopology {
        OpAmpTopology::miller(MirrorTopology::Simple, false)
    }

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    #[test]
    fn template_builds_and_validates() {
        let tech = Technology::default_1p2um();
        let p = blind_center(topo()).unwrap();
        let (ckt, out) = build_candidate(&tech, topo(), &spec(), &p).unwrap();
        assert!(ckt.validate().is_ok());
        assert!(!out.is_ground());
        assert_eq!(ckt.stats().mosfets, 8);
    }

    #[test]
    fn buffered_and_wilson_variants() {
        let tech = Technology::default_1p2um();
        let topo_b = OpAmpTopology::miller(MirrorTopology::Wilson, true);
        let p = blind_center(topo_b).unwrap();
        let (ckt, _) = build_candidate(&tech, topo_b, &spec(), &p).unwrap();
        assert!(ckt.validate().is_ok());
        // 2 pair + 2 load + M6 + M7 + MB1 + MWD + MWC + MBUF + MSINK = 11.
        assert_eq!(ckt.stats().mosfets, 11);
    }

    #[test]
    fn area_formula_matches_netlist() {
        let tech = Technology::default_1p2um();
        let p = blind_center(topo()).unwrap();
        let (ckt, _) = build_candidate(&tech, topo(), &spec(), &p).unwrap();
        let from_netlist = ckt.total_gate_area();
        let from_formula = candidate_area(&tech, topo(), &spec(), &p);
        assert!(
            (from_netlist - from_formula).abs() / from_netlist < 1e-12,
            "netlist {from_netlist} vs formula {from_formula}"
        );
    }

    #[test]
    fn wrong_dimension_rejected() {
        let tech = Technology::default_1p2um();
        let p = DesignPoint {
            values: vec![1e-6; 3],
        };
        assert!(build_candidate(&tech, topo(), &spec(), &p).is_err());
        let _ = variables(topo());
    }
}
