//! Final design verification ("design verification is typically performed
//! by a circuit simulator such as SPICE" — paper §1).
//!
//! Unlike the fast AWE loop, the audit runs the full simulator: complete
//! AC sweep, phase margin, measured gain/UGF, and an audit of every
//! specification. This produces the "simulate the sized circuits produced
//! by ASTRX/OBLX" columns of Tables 1 and 4.

use crate::error::OblxError;
use crate::template::{build_candidate, candidate_area};
use crate::vars::DesignPoint;
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_core::Performance;
use ape_netlist::Technology;
use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

/// Result of a full-simulation audit.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Measured performance of the candidate.
    pub measured: Performance,
    /// Phase margin in degrees, if a UGF exists.
    pub phase_margin_deg: Option<f64>,
    /// Human-readable violations (empty = meets spec).
    pub violations: Vec<String>,
}

impl AuditReport {
    /// `true` when every specification is met.
    pub fn meets_spec(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Why the final audit produced no report: the simulation itself broke
/// down (the "doesn't work" rows of Tables 1 and 4), as opposed to a
/// design that simulates fine but violates its specifications — those are
/// listed in [`AuditReport::violations`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFailure {
    /// Which stage failed and how (e.g. `"dc: singular matrix"`).
    pub reason: String,
}

impl std::fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit failed: {}", self.reason)
    }
}

/// Audits a candidate against `spec` with the full simulator.
///
/// `tol` is the fractional slack on each specification (the paper accepts
/// designs "within reasonable accuracy"; the table harness uses 0.25).
///
/// # Errors
///
/// [`OblxError::AuditFailed`] only when even the DC operating point cannot
/// be computed — that is Table 1's "doesn't work" row. Spec violations are
/// reported in the `violations` list, not as errors.
/// [`OblxError::Cancelled`] when the thread-current cancellation token
/// fires before or between the simulation stages: the full AC sweep is the
/// most expensive step of a synthesis, and a batch shutdown should not
/// have to wait for it.
pub fn audit_candidate(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    point: &DesignPoint,
    tol: f64,
) -> Result<AuditReport, OblxError> {
    let _span = ape_probe::span("oblx.audit");
    ape_probe::counter("oblx.audits", 1);
    ape_core::cancel::check_current().map_err(|_| OblxError::Cancelled)?;
    let (ckt, out) = build_candidate(tech, topology, spec, point)?;
    let op =
        dc_operating_point(&ckt, tech).map_err(|e| OblxError::AuditFailed(format!("dc: {e}")))?;
    // The DC point is cheap; the sweep below is not. Re-check between them.
    ape_core::cancel::check_current().map_err(|_| OblxError::Cancelled)?;
    let freqs = decade_frequencies(100.0, 2e9, 8)
        .map_err(|e| OblxError::AuditFailed(format!("freq grid: {e}")))?;
    let sweep = ac_sweep(&ckt, tech, &op, &freqs)
        .map_err(|e| OblxError::AuditFailed(format!("ac: {e}")))?;
    let gain =
        measure::dc_gain(&sweep, out).map_err(|e| OblxError::AuditFailed(format!("gain: {e}")))?;
    let ugf = measure::unity_gain_frequency(&sweep, out).ok();
    let pm = measure::phase_margin(&sweep, out).ok();
    let area = candidate_area(tech, topology, spec, point);
    let power = op.supply_power(&ckt);
    let measured = Performance {
        dc_gain: Some(gain),
        ugf_hz: ugf,
        bw_hz: ugf.map(|u| u / gain.max(1.0)),
        power_w: power,
        gate_area_m2: area,
        ..Performance::default()
    };
    let mut violations = OpAmp::audit(spec, &measured, tol);
    if let Some(pm) = pm {
        if pm < 30.0 {
            violations.push(format!("phase margin {pm:.0}° < 30°"));
        }
    }
    if gain < 1.0 {
        violations.push(format!("no usable gain ({gain:.3})"));
    }
    Ok(AuditReport {
        measured,
        phase_margin_deg: pm,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::design_point_from_ape;
    use ape_core::basic::MirrorTopology;

    fn topo() -> OpAmpTopology {
        OpAmpTopology::miller(MirrorTopology::Simple, false)
    }

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    #[test]
    fn ape_design_passes_audit() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let point = design_point_from_ape(&tech, &amp);
        let report = audit_candidate(&tech, topo(), &spec(), &point, 0.25).unwrap();
        assert!(
            report.meets_spec(),
            "violations: {:?} measured {:?}",
            report.violations,
            report.measured
        );
        assert!(report.phase_margin_deg.unwrap_or(0.0) > 30.0);
    }

    #[test]
    fn tiny_design_fails_audit_with_reasons() {
        let tech = Technology::default_1p2um();
        let defs = crate::vars::variables(topo());
        let point = DesignPoint {
            values: defs.iter().map(|d| d.lo).collect(),
        };
        match audit_candidate(&tech, topo(), &spec(), &point, 0.25) {
            Ok(report) => assert!(!report.meets_spec()),
            Err(OblxError::AuditFailed(_)) => {} // "doesn't work" row
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn cancelled_token_aborts_the_audit() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let point = design_point_from_ape(&tech, &amp);
        let token = ape_core::cancel::CancelToken::new();
        token.cancel();
        let _guard = ape_core::cancel::set_current(token);
        let r = audit_candidate(&tech, topo(), &spec(), &point, 0.25);
        assert_eq!(r.unwrap_err(), OblxError::Cancelled);
    }
}
