//! An ASTRX/OBLX-style optimisation-based analog circuit synthesis engine.
//!
//! The paper evaluates APE by feeding its sizings into ASTRX/OBLX, the
//! CMU synthesis system whose engine is "based on a simulated annealing
//! search algorithm" with candidate evaluation by AWE (paper §3). That
//! system is not distributable, so this crate rebuilds its behavioural
//! core:
//!
//! * a fixed two-stage op-amp **template** whose transistor sizes and
//!   compensation capacitor are the unknowns ([`variables`]);
//! * user-supplied **intervals** on the unknowns — decade-wide when blind,
//!   ±20 % around an APE sizing when seeded ([`InitialPoint`]);
//! * a **cost function** compiled from the specifications with
//!   relative-shortfall penalties and small area/power objectives
//!   ([`cost::cost`]);
//! * **simulated annealing** over the interval box (`ape-anneal`), each
//!   move evaluated with a DC solve plus an **AWE reduced model**
//!   (`ape-awe`) rather than a full sweep;
//! * a final **audit** with the full simulator (`ape-spice`), reproducing
//!   the "simulate the sized circuit" columns of Tables 1 and 4.
//!
//! # Example
//!
//! Seeded synthesis from an APE sizing (the paper's Table 4 flow):
//!
//! ```no_run
//! use ape_netlist::Technology;
//! use ape_core::basic::MirrorTopology;
//! use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
//! use ape_oblx::{synthesize, design_point_from_ape, InitialPoint, SynthesisOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::default_1p2um();
//! let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
//! let spec = OpAmpSpec {
//!     gain: 200.0, ugf_hz: 5e6, area_max_m2: 5000e-12,
//!     ibias: 10e-6, zout_ohm: None, cl: 10e-12,
//! };
//! let ape = OpAmp::design(&tech, topo, spec)?;           // APE front-end
//! let init = InitialPoint::ApeSeeded {
//!     point: design_point_from_ape(&tech, &ape),
//!     interval_frac: 0.2,                                 // paper's ±20 %
//! };
//! let outcome = synthesize(&tech, topo, &spec, &init, &SynthesisOptions::default())?;
//! assert!(outcome.meets_spec());
//! # Ok(())
//! # }
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod calibrate;
pub mod cost;
mod error;
mod eval;
mod synth;
mod template;
mod vars;

pub use audit::{audit_candidate, AuditFailure, AuditReport};
pub use calibrate::{fit_opamp_calibration, seed_interval_frac};
pub use cost::{satisfies, CostWeights};
pub use error::OblxError;
pub use eval::{evaluate_candidate, evaluate_candidate_with, CandidateEval, EvalFidelity};
pub use synth::{
    synthesize, synthesize_portfolio, InitialPoint, MemberSummary, PortfolioOutcome, SolverChoice,
    SynthesisOptions, SynthesisOutcome,
};
pub use template::{build_candidate, candidate_area};
pub use vars::{
    apply_point_to_opamp, blind_center, blind_ranges, design_point_from_ape, seeded_ranges,
    variables, DesignPoint, VarDef,
};
