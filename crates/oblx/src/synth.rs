//! The synthesis driver: simulated annealing over the design variables.

use crate::audit::{audit_candidate, AuditReport};
use crate::cost::{cost, CostWeights};
use crate::error::OblxError;
use crate::eval::{evaluate_candidate_with, EvalFidelity};
use crate::vars::{blind_center, blind_ranges, seeded_ranges, DesignPoint};
use ape_anneal::{anneal_with_observer, AnnealOptions, Observer, Schedule, TempStats};
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use ape_netlist::Technology;
use std::time::Instant;

/// Where the search starts and how wide the intervals are.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialPoint {
    /// No prior knowledge: decade-wide intervals, start at their centre
    /// (the Table 1 stand-alone mode).
    Blind,
    /// APE-seeded start: intervals ±`interval_frac` around `point`
    /// (the Table 4 mode; the paper uses 0.2).
    ApeSeeded {
        /// The estimator's sizing.
        point: DesignPoint,
        /// Fractional interval half-width.
        interval_frac: f64,
    },
}

/// Options for a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisOptions {
    /// Cost-evaluation budget (each evaluation is a DC solve + AWE).
    pub max_evals: usize,
    /// Moves per annealing temperature.
    pub moves_per_temp: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cost weights.
    pub weights: CostWeights,
    /// Audit slack (fraction).
    pub audit_tol: f64,
    /// Candidate-evaluation fidelity. Defaults to [`EvalFidelity::AweOnly`],
    /// matching ASTRX/OBLX's AWE-based evaluation.
    pub fidelity: EvalFidelity,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            max_evals: 4000,
            moves_per_temp: 40,
            seed: 1999,
            weights: CostWeights::default(),
            audit_tol: 0.25,
            fidelity: EvalFidelity::default(),
        }
    }
}

/// Outcome of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Best sizing found.
    pub best: DesignPoint,
    /// Its annealing cost.
    pub cost: f64,
    /// Cost evaluations spent.
    pub evals: usize,
    /// Full-simulation audit of the best point (`None` when even the DC
    /// point fails — the "doesn't work" case).
    pub audit: Option<AuditReport>,
    /// Wall-clock time of the whole run including the audit.
    pub wall: std::time::Duration,
}

impl SynthesisOutcome {
    /// `true` when the audited design meets every specification.
    pub fn meets_spec(&self) -> bool {
        self.audit
            .as_ref()
            .map(AuditReport::meets_spec)
            .unwrap_or(false)
    }
}

/// Polls the thread-current cancellation token at every temperature
/// plateau, so a batch driver can abandon a synthesis between plateaus
/// without killing its worker thread.
struct CancelObserver {
    cancelled: bool,
}

impl Observer for CancelObserver {
    fn on_temperature(&mut self, _stats: &TempStats) {}

    fn should_stop(&mut self) -> bool {
        if !self.cancelled {
            self.cancelled = ape_core::cancel::current_cancelled();
        }
        self.cancelled
    }
}

/// Runs the annealing-based sizing of the two-stage template against
/// `spec`, in the style of ASTRX/OBLX.
///
/// # Errors
///
/// * [`OblxError::BadSpec`] for malformed specs; everything downstream
///   degrades gracefully into the outcome's audit field.
/// * [`OblxError::Cancelled`] when the thread-current
///   [`CancelToken`](ape_core::cancel::CancelToken) fires: the annealer
///   stops at the next plateau boundary and the run is abandoned before
///   the audit simulation.
pub fn synthesize(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    init: &InitialPoint,
    opts: &SynthesisOptions,
) -> Result<SynthesisOutcome, OblxError> {
    let _span = ape_probe::span("oblx.synthesize");
    // Every field participates in the cost function as a divisor or scale,
    // so infinities are as poisonous as NaN: an inf gain makes the gain
    // shortfall NaN and the annealer chases noise forever.
    if !(spec.gain.is_finite()
        && spec.gain > 1.0
        && spec.ugf_hz.is_finite()
        && spec.ugf_hz > 0.0
        && spec.cl.is_finite()
        && spec.cl > 0.0
        && spec.ibias.is_finite()
        && spec.ibias > 0.0
        && spec.area_max_m2.is_finite()
        && spec.area_max_m2 > 0.0
        && spec.zout_ohm.is_none_or(|z| z.is_finite() && z > 0.0))
    {
        return Err(OblxError::BadSpec(format!(
            "gain {}, ugf {}, cl {}, ibias {}, area_max {}, zout {:?}",
            spec.gain, spec.ugf_hz, spec.cl, spec.ibias, spec.area_max_m2, spec.zout_ohm
        )));
    }
    let t0 = Instant::now();
    let (ranges, start) = match init {
        InitialPoint::Blind => (blind_ranges(topology)?, blind_center(topology)?.to_log()),
        InitialPoint::ApeSeeded {
            point,
            interval_frac,
        } => {
            let r = seeded_ranges(topology, point, *interval_frac)?;
            let clamped = r.clamp(point.to_log());
            (r, clamped)
        }
    };
    let weights = opts.weights;
    let spec_c = *spec;
    let tech_c = tech.clone();
    let fidelity = opts.fidelity;
    let initial_eval = evaluate_candidate_with(
        &tech_c,
        topology,
        &spec_c,
        &DesignPoint::from_log(&start),
        fidelity,
    );
    let initial_cost = cost(&initial_eval, &spec_c, &weights);
    let anneal_opts = AnnealOptions {
        schedule: Schedule::Geometric {
            t0: (initial_cost / 3.0).clamp(0.5, 1e3),
            alpha: 0.9,
            moves_per_temp: opts.moves_per_temp,
            t_min: 1e-6,
        },
        max_evals: opts.max_evals,
        seed: opts.seed,
        // Feasible designs cost only their small objective terms; stop once
        // the search is comfortably inside that region.
        target_cost: 0.04,
    };
    let mut cancel_obs = CancelObserver { cancelled: false };
    let result = anneal_with_observer(
        start,
        |s| {
            let p = DesignPoint::from_log(s);
            let e = evaluate_candidate_with(&tech_c, topology, &spec_c, &p, fidelity);
            cost(&e, &spec_c, &weights)
        },
        |s, t, rng| ranges.neighbor(s, t, rng),
        &anneal_opts,
        &mut cancel_obs,
    );
    if cancel_obs.cancelled || ape_core::cancel::current_cancelled() {
        return Err(OblxError::Cancelled);
    }
    let best = DesignPoint::from_log(&result.best_state);
    let audit = audit_candidate(tech, topology, spec, &best, opts.audit_tol).ok();
    Ok(SynthesisOutcome {
        best,
        cost: result.best_cost,
        evals: result.evals,
        audit,
        wall: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::design_point_from_ape;
    use ape_core::basic::MirrorTopology;
    use ape_core::opamp::OpAmp;

    fn topo() -> OpAmpTopology {
        OpAmpTopology::miller(MirrorTopology::Simple, false)
    }

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 150.0,
            ugf_hz: 3e6,
            area_max_m2: 6000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    #[test]
    fn seeded_synthesis_meets_spec_quickly() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let init = InitialPoint::ApeSeeded {
            point: design_point_from_ape(&tech, &amp),
            interval_frac: 0.2,
        };
        let opts = SynthesisOptions {
            max_evals: 250,
            moves_per_temp: 20,
            seed: 7,
            ..SynthesisOptions::default()
        };
        let out = synthesize(&tech, topo(), &spec(), &init, &opts).unwrap();
        assert!(
            out.meets_spec(),
            "audit: {:?}",
            out.audit.map(|a| a.violations)
        );
        assert!(out.evals <= 250);
    }

    #[test]
    fn blind_synthesis_cannot_beat_infeasible_area() {
        // The audit must catch violations the annealer cannot fix: a
        // 200 µm² budget at 10 MHz into 10 pF exceeds what any sizing of
        // this template achieves in this technology (M6 alone needs more).
        let tech = Technology::default_1p2um();
        let hard = OpAmpSpec {
            gain: 50.0,
            ugf_hz: 10e6,
            area_max_m2: 150e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        };
        let opts = SynthesisOptions {
            max_evals: 80,
            moves_per_temp: 10,
            seed: 3,
            ..SynthesisOptions::default()
        };
        let out = synthesize(&tech, topo(), &hard, &InitialPoint::Blind, &opts).unwrap();
        assert!(!out.meets_spec());
    }

    #[test]
    fn pre_cancelled_token_aborts_synthesis() {
        let tech = Technology::default_1p2um();
        let token = ape_core::cancel::CancelToken::new();
        token.cancel();
        let _guard = ape_core::cancel::set_current(token);
        let r = synthesize(
            &tech,
            topo(),
            &spec(),
            &InitialPoint::Blind,
            &SynthesisOptions {
                max_evals: 100,
                moves_per_temp: 10,
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(r.unwrap_err(), OblxError::Cancelled);
    }

    #[test]
    fn bad_spec_rejected() {
        let tech = Technology::default_1p2um();
        let mut s = spec();
        s.gain = 0.5;
        let r = synthesize(
            &tech,
            topo(),
            &s,
            &InitialPoint::Blind,
            &SynthesisOptions::default(),
        );
        assert!(r.is_err());
    }
}
