//! The synthesis driver: a portfolio of search engines over the design
//! variables, simulated annealing (the ASTRX/OBLX default) among them.

use crate::audit::{audit_candidate, AuditFailure, AuditReport};
use crate::cost::{cost, CostWeights};
use crate::error::OblxError;
use crate::eval::{evaluate_candidate_with, EvalFidelity};
use crate::vars::{blind_center, blind_ranges, seeded_ranges, DesignPoint};
use ape_anneal::{
    anneal_with_observer, AnnealOptions, Observer, Schedule, TempStats, VectorRanges,
};
use ape_core::graph::{ensure_thread_shared_memo, thread_shared_memo, SharedMemo};
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use ape_netlist::Technology;
use ape_solve::{Budget, CancelAware, CmaEs, NewtonPolish, ParticleSwarm, Problem, Solver};
use std::sync::Arc;
use std::time::Instant;

/// Feasible designs cost only their small objective terms; the search can
/// stop once it is comfortably inside that region.
const TARGET_COST: f64 = 0.04;

/// Where the search starts and how wide the intervals are.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialPoint {
    /// No prior knowledge: decade-wide intervals, start at their centre
    /// (the Table 1 stand-alone mode).
    Blind,
    /// APE-seeded start: intervals ±`interval_frac` around `point`
    /// (the Table 4 mode; the paper uses 0.2).
    ApeSeeded {
        /// The estimator's sizing.
        point: DesignPoint,
        /// Fractional interval half-width.
        interval_frac: f64,
    },
}

/// Which search engine sizes the template.
///
/// The default, [`SolverChoice::Sa`], is the simulated-annealing loop the
/// paper's ASTRX/OBLX system uses, and its trajectories are bit-exact with
/// the pre-portfolio versions of this crate. The alternatives run the same
/// cost function through the `ape-solve` portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverChoice {
    /// Simulated annealing (the ASTRX/OBLX engine). The default.
    #[default]
    Sa,
    /// CMA-ES over the log-space interval box.
    CmaEs,
    /// Particle swarm over the log-space interval box.
    ParticleSwarm,
    /// Derivative-free Newton-style coordinate polish — strongest when
    /// APE-seeded, where the start is already near the optimum.
    NewtonPolish,
    /// Race all of the above on the shared executor; first engine to reach
    /// a feasible design wins and the others stop cooperatively.
    Portfolio,
}

/// Options for a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisOptions {
    /// Cost-evaluation budget (each evaluation is a DC solve + AWE).
    pub max_evals: usize,
    /// Moves per annealing temperature.
    pub moves_per_temp: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cost weights.
    pub weights: CostWeights,
    /// Audit slack (fraction).
    pub audit_tol: f64,
    /// Candidate-evaluation fidelity. Defaults to [`EvalFidelity::AweOnly`],
    /// matching ASTRX/OBLX's AWE-based evaluation.
    pub fidelity: EvalFidelity,
    /// Search engine. Defaults to [`SolverChoice::Sa`].
    pub solver: SolverChoice,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            max_evals: 4000,
            moves_per_temp: 40,
            seed: 1999,
            weights: CostWeights::default(),
            audit_tol: 0.25,
            fidelity: EvalFidelity::default(),
            solver: SolverChoice::default(),
        }
    }
}

/// Outcome of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Best sizing found.
    pub best: DesignPoint,
    /// Its annealing cost.
    pub cost: f64,
    /// Cost evaluations spent.
    pub evals: usize,
    /// Full-simulation audit of the best point. `Err` carries *why* the
    /// audit produced no report (e.g. the DC point never converged — the
    /// "doesn't work" case); a report with violations is still `Ok`.
    pub audit: Result<AuditReport, AuditFailure>,
    /// Wall-clock time of the whole run including the audit.
    pub wall: std::time::Duration,
}

impl SynthesisOutcome {
    /// `true` when the audited design meets every specification.
    pub fn meets_spec(&self) -> bool {
        matches!(&self.audit, Ok(r) if r.meets_spec())
    }
}

/// One portfolio member's contribution to a [`PortfolioOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberSummary {
    /// The member solver's name (`"sa"`, `"cma-es"`, `"pso"`, `"newton"`).
    pub name: &'static str,
    /// Best cost that member reached before the race was decided.
    pub best_cost: f64,
    /// Evaluations that member spent.
    pub evals: usize,
    /// Did that member reach a feasible design?
    pub satisfied: bool,
}

/// Outcome of [`synthesize_portfolio`]: the winning design plus the race
/// telemetry.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The winning member's synthesis outcome. Its `evals` field counts
    /// the *total* across all members — that is what the run paid.
    pub outcome: SynthesisOutcome,
    /// Name of the winning member.
    pub winner: &'static str,
    /// Per-member telemetry, in portfolio order.
    pub members: Vec<MemberSummary>,
}

/// Polls the thread-current cancellation token at every temperature
/// plateau, so a batch driver can abandon a synthesis between plateaus
/// without killing its worker thread.
struct CancelObserver {
    cancelled: bool,
}

impl Observer for CancelObserver {
    fn on_temperature(&mut self, _stats: &TempStats) {}

    fn should_stop(&mut self) -> bool {
        if !self.cancelled {
            self.cancelled = ape_core::cancel::current_cancelled();
        }
        self.cancelled
    }
}

/// Spec validation plus interval/start construction, shared by every
/// solver path.
fn prepare(
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    init: &InitialPoint,
) -> Result<(VectorRanges, Vec<f64>), OblxError> {
    // Every field participates in the cost function as a divisor or scale,
    // so infinities are as poisonous as NaN: an inf gain makes the gain
    // shortfall NaN and the annealer chases noise forever.
    if !(spec.gain.is_finite()
        && spec.gain > 1.0
        && spec.ugf_hz.is_finite()
        && spec.ugf_hz > 0.0
        && spec.cl.is_finite()
        && spec.cl > 0.0
        && spec.ibias.is_finite()
        && spec.ibias > 0.0
        && spec.area_max_m2.is_finite()
        && spec.area_max_m2 > 0.0
        && spec.zout_ohm.is_none_or(|z| z.is_finite() && z > 0.0))
    {
        return Err(OblxError::BadSpec(format!(
            "gain {}, ugf {}, cl {}, ibias {}, area_max {}, zout {:?}",
            spec.gain, spec.ugf_hz, spec.cl, spec.ibias, spec.area_max_m2, spec.zout_ohm
        )));
    }
    match init {
        InitialPoint::Blind => Ok((blind_ranges(topology)?, blind_center(topology)?.to_log())),
        InitialPoint::ApeSeeded {
            point,
            interval_frac,
        } => {
            let r = seeded_ranges(topology, point, *interval_frac)?;
            let clamped = r.clamp(point.to_log());
            Ok((r, clamped))
        }
    }
}

/// Audits `best` and folds the result into the outcome's audit field:
/// cancellation propagates as an error, any other audit breakdown is
/// recorded with its reason.
fn run_audit(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    best: &DesignPoint,
    tol: f64,
) -> Result<Result<AuditReport, AuditFailure>, OblxError> {
    match audit_candidate(tech, topology, spec, best, tol) {
        Ok(report) => Ok(Ok(report)),
        Err(OblxError::Cancelled) => Err(OblxError::Cancelled),
        Err(e) => Ok(Err(AuditFailure {
            reason: e.to_string(),
        })),
    }
}

/// Runs the optimisation-based sizing of the two-stage template against
/// `spec`, in the style of ASTRX/OBLX. The engine is chosen by
/// [`SynthesisOptions::solver`]; the default annealer reproduces the
/// original ASTRX/OBLX behaviour bit-exactly.
///
/// # Errors
///
/// * [`OblxError::BadSpec`] for malformed specs; everything downstream
///   degrades gracefully into the outcome's audit field.
/// * [`OblxError::Cancelled`] when the thread-current
///   [`CancelToken`](ape_core::cancel::CancelToken) fires: the search
///   stops at its next cooperative poll and the run is abandoned before
///   (or during) the audit simulation.
pub fn synthesize(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    init: &InitialPoint,
    opts: &SynthesisOptions,
) -> Result<SynthesisOutcome, OblxError> {
    let _span = ape_probe::span("oblx.synthesize");
    if opts.solver == SolverChoice::Portfolio {
        return synthesize_portfolio(tech, topology, spec, init, opts).map(|p| p.outcome);
    }
    let t0 = Instant::now();
    let (ranges, start) = prepare(topology, spec, init)?;
    let weights = opts.weights;
    let spec_c = *spec;
    let tech_c = tech.clone();
    let fidelity = opts.fidelity;

    let (best, best_cost, evals) = match opts.solver {
        SolverChoice::Sa => {
            let initial_eval = evaluate_candidate_with(
                &tech_c,
                topology,
                &spec_c,
                &DesignPoint::from_log(&start),
                fidelity,
            );
            let initial_cost = cost(&initial_eval, &spec_c, tech_c.vdd, &weights);
            let anneal_opts = AnnealOptions {
                schedule: Schedule::Geometric {
                    t0: (initial_cost / 3.0).clamp(0.5, 1e3),
                    alpha: 0.9,
                    moves_per_temp: opts.moves_per_temp,
                    t_min: 1e-6,
                },
                max_evals: opts.max_evals,
                seed: opts.seed,
                target_cost: TARGET_COST,
            };
            let mut cancel_obs = CancelObserver { cancelled: false };
            let result = anneal_with_observer(
                start,
                |s| {
                    let p = DesignPoint::from_log(s);
                    let e = evaluate_candidate_with(&tech_c, topology, &spec_c, &p, fidelity);
                    cost(&e, &spec_c, tech_c.vdd, &weights)
                },
                |s, t, rng| ranges.neighbor(s, t, rng),
                &anneal_opts,
                &mut cancel_obs,
            );
            if cancel_obs.cancelled || ape_core::cancel::current_cancelled() {
                return Err(OblxError::Cancelled);
            }
            (
                DesignPoint::from_log(&result.best_state),
                result.best_cost,
                result.evals,
            )
        }
        SolverChoice::CmaEs | SolverChoice::ParticleSwarm | SolverChoice::NewtonPolish => {
            // Share the caller's memo if one is installed (a farm worker's
            // cross-job cache); otherwise give the run its own, so parallel
            // generations still deduplicate re-visited candidates.
            let memo = thread_shared_memo().unwrap_or_else(|| Arc::new(SharedMemo::new()));
            let solver_cost = move |s: &[f64]| {
                ensure_thread_shared_memo(Some(memo.clone()));
                let p = DesignPoint::from_log(s);
                let e = evaluate_candidate_with(&tech_c, topology, &spec_c, &p, fidelity);
                cost(&e, &spec_c, tech_c.vdd, &weights)
            };
            let feasible = |c: f64| c <= TARGET_COST;
            let problem = Problem::new(&ranges, &solver_cost)
                .with_satisfied(&feasible)
                .with_start(start);
            let budget = Budget {
                max_evals: opts.max_evals,
                seed: opts.seed,
            };
            let mut obs = CancelAware;
            let r = match opts.solver {
                SolverChoice::CmaEs => CmaEs::default().solve(&problem, &budget, &mut obs),
                SolverChoice::ParticleSwarm => {
                    ParticleSwarm::default().solve(&problem, &budget, &mut obs)
                }
                _ => NewtonPolish::default().solve(&problem, &budget, &mut obs),
            };
            if ape_core::cancel::current_cancelled() {
                return Err(OblxError::Cancelled);
            }
            (DesignPoint::from_log(&r.best), r.best_cost, r.evals)
        }
        SolverChoice::Portfolio => unreachable!("handled above"),
    };

    let audit = run_audit(tech, topology, spec, &best, opts.audit_tol)?;
    Ok(SynthesisOutcome {
        best,
        cost: best_cost,
        evals,
        audit,
        wall: t0.elapsed(),
    })
}

/// Races the standard solver portfolio (annealing, CMA-ES, particle
/// swarm, Newton polish) on the shared executor: every member gets the
/// full evaluation budget and a decorrelated seed, the first member to
/// reach a feasible design trips a shared flag, and the others stop at
/// their next cooperative poll. Candidate evaluations funnel through one
/// shared memo, so members re-visiting each other's design points pay
/// nothing.
///
/// The returned outcome's `evals` counts the total across all members.
///
/// # Errors
///
/// Same as [`synthesize`]; cancellation via the thread-current token stops
/// all members cooperatively.
pub fn synthesize_portfolio(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    init: &InitialPoint,
    opts: &SynthesisOptions,
) -> Result<PortfolioOutcome, OblxError> {
    let _span = ape_probe::span("oblx.synthesize_portfolio");
    let t0 = Instant::now();
    let (ranges, start) = prepare(topology, spec, init)?;
    let weights = opts.weights;
    let spec_c = *spec;
    let tech_c = tech.clone();
    let fidelity = opts.fidelity;
    let memo = thread_shared_memo().unwrap_or_else(|| Arc::new(SharedMemo::new()));
    let solver_cost = move |s: &[f64]| {
        ensure_thread_shared_memo(Some(memo.clone()));
        let p = DesignPoint::from_log(s);
        let e = evaluate_candidate_with(&tech_c, topology, &spec_c, &p, fidelity);
        cost(&e, &spec_c, tech_c.vdd, &weights)
    };
    let feasible = |c: f64| c <= TARGET_COST;
    let problem = Problem::new(&ranges, &solver_cost)
        .with_satisfied(&feasible)
        .with_start(start);
    let budget = Budget {
        max_evals: opts.max_evals,
        seed: opts.seed,
    };
    let race =
        ape_solve::Portfolio::standard().race(&problem, &budget, ape_exec::Executor::global());
    if ape_core::cancel::current_cancelled() {
        return Err(OblxError::Cancelled);
    }
    let total_evals = race.total_evals();
    let members = race
        .members
        .iter()
        .map(|m| MemberSummary {
            name: m.name,
            best_cost: m.result.best_cost,
            evals: m.result.evals,
            satisfied: m.result.satisfied,
        })
        .collect();
    let winner = race
        .members
        .get(race.winner)
        .map(|m| m.name)
        .unwrap_or("none");
    let best = DesignPoint::from_log(&race.best.best);
    let audit = run_audit(tech, topology, spec, &best, opts.audit_tol)?;
    Ok(PortfolioOutcome {
        outcome: SynthesisOutcome {
            best,
            cost: race.best.best_cost,
            evals: total_evals,
            audit,
            wall: t0.elapsed(),
        },
        winner,
        members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::design_point_from_ape;
    use ape_core::basic::MirrorTopology;
    use ape_core::opamp::OpAmp;

    fn topo() -> OpAmpTopology {
        OpAmpTopology::miller(MirrorTopology::Simple, false)
    }

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 150.0,
            ugf_hz: 3e6,
            area_max_m2: 6000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    #[test]
    fn seeded_synthesis_meets_spec_quickly() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let init = InitialPoint::ApeSeeded {
            point: design_point_from_ape(&tech, &amp),
            interval_frac: 0.2,
        };
        let opts = SynthesisOptions {
            max_evals: 250,
            moves_per_temp: 20,
            seed: 7,
            ..SynthesisOptions::default()
        };
        let out = synthesize(&tech, topo(), &spec(), &init, &opts).unwrap();
        assert!(
            out.meets_spec(),
            "audit: {:?}",
            out.audit.map(|a| a.violations)
        );
        assert!(out.evals <= 250);
    }

    #[test]
    fn blind_synthesis_cannot_beat_infeasible_area() {
        // The audit must catch violations the annealer cannot fix: a
        // 200 µm² budget at 10 MHz into 10 pF exceeds what any sizing of
        // this template achieves in this technology (M6 alone needs more).
        let tech = Technology::default_1p2um();
        let hard = OpAmpSpec {
            gain: 50.0,
            ugf_hz: 10e6,
            area_max_m2: 150e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        };
        let opts = SynthesisOptions {
            max_evals: 80,
            moves_per_temp: 10,
            seed: 3,
            ..SynthesisOptions::default()
        };
        let out = synthesize(&tech, topo(), &hard, &InitialPoint::Blind, &opts).unwrap();
        assert!(!out.meets_spec());
    }

    #[test]
    fn pre_cancelled_token_aborts_synthesis() {
        let tech = Technology::default_1p2um();
        let token = ape_core::cancel::CancelToken::new();
        token.cancel();
        let _guard = ape_core::cancel::set_current(token);
        let r = synthesize(
            &tech,
            topo(),
            &spec(),
            &InitialPoint::Blind,
            &SynthesisOptions {
                max_evals: 100,
                moves_per_temp: 10,
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(r.unwrap_err(), OblxError::Cancelled);
    }

    #[test]
    fn pre_cancelled_token_aborts_every_solver_choice() {
        let tech = Technology::default_1p2um();
        for solver in [
            SolverChoice::CmaEs,
            SolverChoice::ParticleSwarm,
            SolverChoice::NewtonPolish,
            SolverChoice::Portfolio,
        ] {
            let token = ape_core::cancel::CancelToken::new();
            token.cancel();
            let _guard = ape_core::cancel::set_current(token);
            let r = synthesize(
                &tech,
                topo(),
                &spec(),
                &InitialPoint::Blind,
                &SynthesisOptions {
                    max_evals: 60,
                    moves_per_temp: 10,
                    solver,
                    ..SynthesisOptions::default()
                },
            );
            assert_eq!(r.unwrap_err(), OblxError::Cancelled, "solver {solver:?}");
        }
    }

    #[test]
    fn bad_spec_rejected() {
        let tech = Technology::default_1p2um();
        let mut s = spec();
        s.gain = 0.5;
        let r = synthesize(
            &tech,
            topo(),
            &s,
            &InitialPoint::Blind,
            &SynthesisOptions::default(),
        );
        assert!(r.is_err());
    }

    /// The `SolverChoice::Sa` path must reproduce the pre-portfolio
    /// annealing loop bit-exactly: same schedule scaling, same RNG
    /// stream, same accounting. This pins the refactor.
    #[test]
    fn default_solver_is_bit_exact_with_the_legacy_anneal_loop() {
        let tech = Technology::default_1p2um();
        let opts = SynthesisOptions {
            max_evals: 120,
            moves_per_temp: 10,
            seed: 23,
            ..SynthesisOptions::default()
        };
        let out = synthesize(&tech, topo(), &spec(), &InitialPoint::Blind, &opts).unwrap();

        // Hand-rolled copy of the original synthesize() search body.
        let (ranges, start) = prepare(topo(), &spec(), &InitialPoint::Blind).unwrap();
        let weights = opts.weights;
        let spec_c = spec();
        let initial_eval = evaluate_candidate_with(
            &tech,
            topo(),
            &spec_c,
            &DesignPoint::from_log(&start),
            opts.fidelity,
        );
        let initial_cost = cost(&initial_eval, &spec_c, tech.vdd, &weights);
        let anneal_opts = AnnealOptions {
            schedule: Schedule::Geometric {
                t0: (initial_cost / 3.0).clamp(0.5, 1e3),
                alpha: 0.9,
                moves_per_temp: opts.moves_per_temp,
                t_min: 1e-6,
            },
            max_evals: opts.max_evals,
            seed: opts.seed,
            target_cost: 0.04,
        };
        let mut obs = CancelObserver { cancelled: false };
        let reference = anneal_with_observer(
            start,
            |s| {
                let p = DesignPoint::from_log(s);
                let e = evaluate_candidate_with(&tech, topo(), &spec_c, &p, opts.fidelity);
                cost(&e, &spec_c, tech.vdd, &weights)
            },
            |s, t, rng| ranges.neighbor(s, t, rng),
            &anneal_opts,
            &mut obs,
        );
        assert_eq!(
            out.best.values,
            DesignPoint::from_log(&reference.best_state).values
        );
        assert_eq!(out.cost, reference.best_cost);
        assert_eq!(out.evals, reference.evals);
    }

    #[test]
    fn seeded_portfolio_meets_spec_and_reports_members() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let init = InitialPoint::ApeSeeded {
            point: design_point_from_ape(&tech, &amp),
            interval_frac: 0.2,
        };
        let opts = SynthesisOptions {
            max_evals: 200,
            moves_per_temp: 20,
            seed: 7,
            solver: SolverChoice::Portfolio,
            ..SynthesisOptions::default()
        };
        let p = synthesize_portfolio(&tech, topo(), &spec(), &init, &opts).unwrap();
        assert_eq!(p.members.len(), 4);
        assert!(
            p.members.iter().any(|m| m.name == p.winner),
            "winner {} not among members",
            p.winner
        );
        assert!(
            p.outcome.evals >= p.members.iter().map(|m| m.evals).max().unwrap_or(0),
            "total evals must cover every member"
        );
        assert!(p.outcome.meets_spec(), "audit: {:?}", p.outcome.audit);
    }

    #[test]
    fn alternative_solvers_produce_usable_outcomes_when_seeded() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let init = InitialPoint::ApeSeeded {
            point: design_point_from_ape(&tech, &amp),
            interval_frac: 0.2,
        };
        for solver in [
            SolverChoice::CmaEs,
            SolverChoice::ParticleSwarm,
            SolverChoice::NewtonPolish,
        ] {
            let opts = SynthesisOptions {
                max_evals: 150,
                moves_per_temp: 20,
                seed: 7,
                solver,
                ..SynthesisOptions::default()
            };
            let out = synthesize(&tech, topo(), &spec(), &init, &opts).unwrap();
            assert!(out.evals <= 150, "{solver:?} overspent: {}", out.evals);
            assert!(
                out.cost.is_finite(),
                "{solver:?} returned non-finite cost {}",
                out.cost
            );
        }
    }
}
