//! The scalar cost function the annealer minimises.
//!
//! ASTRX/OBLX "generates a cost function from the objectives,
//! specifications, constraints and Kirchhoff Laws" (paper §3). Here the
//! Kirchhoff part is the DC-convergence penalty; specifications enter as
//! quadratic relative-shortfall penalties; area and power act as weak
//! objectives so that, among feasible designs, smaller wins.

use crate::eval::CandidateEval;
use ape_core::opamp::OpAmpSpec;

/// Penalty/objective weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the gain-shortfall penalty.
    pub gain: f64,
    /// Weight of the UGF-shortfall penalty.
    pub ugf: f64,
    /// Weight of the area-excess penalty.
    pub area: f64,
    /// Weight of the phase-margin-shortfall penalty (target 45°).
    pub pm: f64,
    /// Weight of the area objective (always on, drives minimisation).
    pub area_objective: f64,
    /// Weight of the power objective.
    pub power_objective: f64,
    /// Flat cost of a non-convergent DC point.
    pub dc_failure: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            gain: 30.0,
            ugf: 30.0,
            area: 10.0,
            pm: 20.0,
            area_objective: 0.05,
            power_objective: 0.02,
            dc_failure: 1e4,
        }
    }
}

/// Scalar cost of a candidate evaluation against `spec`. Lower is better;
/// a fully feasible design scores only its (small) objective terms.
///
/// `vdd` is the technology supply voltage: the power objective is
/// normalised by the nominal budget `vdd · ibias · 50` — fifty bias-leg
/// currents at the rail, roughly what the two-stage template draws when
/// its output stage is sized for the load — so a typical design
/// contributes an objective term of order one regardless of how the spec
/// scales its bias current or which technology is in play.
pub fn cost(eval: &CandidateEval, spec: &OpAmpSpec, vdd: f64, w: &CostWeights) -> f64 {
    if !eval.dc_ok {
        return w.dc_failure;
    }
    let mut c = 0.0;
    // Gain specification (>=).
    let gain_short = ((spec.gain - eval.gain) / spec.gain).max(0.0);
    c += w.gain * gain_short * gain_short;
    // UGF specification (>=). A response that never reaches unity counts
    // as a full shortfall.
    let ugf_meas = eval.ugf_hz.unwrap_or(0.0);
    let ugf_short = ((spec.ugf_hz - ugf_meas) / spec.ugf_hz).max(0.0);
    c += w.ugf * ugf_short * ugf_short;
    // Phase-margin specification (>= 45°); a missing PM (no UGF) already
    // pays the full UGF shortfall, so charge only half here.
    let pm = eval.pm_deg.unwrap_or(-180.0);
    let pm_short = ((45.0 - pm) / 45.0).clamp(0.0, 4.0);
    c += w.pm * pm_short * pm_short * if eval.pm_deg.is_some() { 1.0 } else { 0.5 };
    // Area constraint (<=).
    let area_excess = (eval.area_m2 / spec.area_max_m2 - 1.0).max(0.0);
    c += w.area * area_excess * area_excess;
    // Objectives.
    c += w.area_objective * eval.area_m2 / spec.area_max_m2;
    let p_norm = (vdd * spec.ibias * 50.0).abs().max(1e-12);
    c += w.power_objective * eval.power_w / p_norm;
    c
}

/// `true` when the evaluation satisfies every hard specification with
/// fractional slack `tol`.
///
/// Note the deliberate phase-margin asymmetry with [`cost`]: the cost
/// function *targets* 45° (penalising anything below it so the search
/// designs in stability headroom), while this predicate — and the final
/// audit — *accept* anything ≥ 30°, the classic bare-minimum stability
/// floor. The gap is audit slack: a design the annealer leaves at, say,
/// 38° still ships, it just never stops paying a small cost pressure
/// toward more margin.
pub fn satisfies(eval: &CandidateEval, spec: &OpAmpSpec, tol: f64) -> bool {
    eval.dc_ok
        && eval.gain >= spec.gain * (1.0 - tol)
        && eval.ugf_hz.unwrap_or(0.0) >= spec.ugf_hz * (1.0 - tol)
        && eval.area_m2 <= spec.area_max_m2 * (1.0 + tol)
        && eval.pm_deg.unwrap_or(-180.0) >= 30.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    fn feasible() -> CandidateEval {
        CandidateEval {
            dc_ok: true,
            gain: 250.0,
            ugf_hz: Some(6e6),
            pm_deg: Some(60.0),
            area_m2: 3000e-12,
            power_w: 0.5e-3,
        }
    }

    #[test]
    fn feasible_costs_little() {
        let c = cost(&feasible(), &spec(), 5.0, &CostWeights::default());
        assert!(c < 0.5, "feasible cost {c}");
        assert!(satisfies(&feasible(), &spec(), 0.0));
    }

    #[test]
    fn dc_failure_dominates() {
        let mut e = feasible();
        e.dc_ok = false;
        assert!(cost(&e, &spec(), 5.0, &CostWeights::default()) > 1e3);
    }

    #[test]
    fn shortfalls_raise_cost_monotonically() {
        let w = CostWeights::default();
        let s = spec();
        let mut worse = feasible();
        let base = cost(&worse, &s, 5.0, &w);
        worse.gain = 100.0;
        let c1 = cost(&worse, &s, 5.0, &w);
        worse.gain = 20.0;
        let c2 = cost(&worse, &s, 5.0, &w);
        assert!(base < c1 && c1 < c2);
        assert!(!satisfies(&worse, &s, 0.1));
    }

    #[test]
    fn poor_phase_margin_penalised() {
        let w = CostWeights::default();
        let s = spec();
        let mut e = feasible();
        e.pm_deg = Some(-20.0);
        assert!(cost(&e, &s, 5.0, &w) > 1.0);
        assert!(!satisfies(&e, &s, 0.1));
    }

    #[test]
    fn missing_ugf_counts_as_full_shortfall() {
        let w = CostWeights::default();
        let s = spec();
        let mut e = feasible();
        e.ugf_hz = None;
        let c = cost(&e, &s, 5.0, &w);
        assert!(c > w.ugf * 0.9, "cost {c}");
    }

    #[test]
    fn smaller_feasible_design_wins() {
        let w = CostWeights::default();
        let s = spec();
        let big = feasible();
        let mut small = feasible();
        small.area_m2 = 1000e-12;
        small.power_w = 0.2e-3;
        assert!(cost(&small, &s, 5.0, &w) < cost(&big, &s, 5.0, &w));
        // The ordering is supply-independent: the power budget rescales
        // with vdd, not the ranking of designs under one spec.
        assert!(cost(&small, &s, 3.3, &w) < cost(&big, &s, 3.3, &w));
    }

    #[test]
    fn power_objective_tracks_supply_and_bias_budget() {
        let w = CostWeights {
            gain: 0.0,
            ugf: 0.0,
            area: 0.0,
            pm: 0.0,
            area_objective: 0.0,
            power_objective: 1.0,
            dc_failure: 1e4,
        };
        let e = feasible();
        let s = spec();
        // At the historical operating point (5 V, 10 µA) the budget is the
        // old hard-wired constant 5.0 · 100e-6 · 5.0 = 2.5 mW, so legacy
        // trajectories are untouched.
        let legacy = cost(&e, &s, 5.0, &w);
        assert!((legacy - e.power_w / 2.5e-3).abs() < 1e-12, "got {legacy}");
        // Halving the supply halves the budget and doubles the normalised
        // power term; a richer bias spec relaxes it proportionally.
        assert!((cost(&e, &s, 2.5, &w) - 2.0 * legacy).abs() < 1e-12);
        let mut rich = s;
        rich.ibias = 20e-6;
        assert!((cost(&e, &rich, 5.0, &w) - legacy / 2.0).abs() < 1e-12);
        // A degenerate supply cannot divide by zero.
        assert!(cost(&e, &s, 0.0, &w).is_finite());
    }
}
