//! Design variables and search intervals.
//!
//! ASTRX/OBLX exposes "the transistor sizes and bias points … as unknowns"
//! with user-supplied intervals (paper §3). This module defines the unknown
//! vector for the two-stage op-amp template, the decade-wide *blind*
//! intervals used in Table 1, and the APE-seeded ±20 % intervals used in
//! Table 4.

use crate::error::OblxError;
use ape_anneal::VectorRanges;
use ape_core::opamp::{OpAmp, OpAmpTopology};

/// One design variable: a name plus its blind search interval. All
/// variables are searched in log space (they span decades).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDef {
    /// Variable name, e.g. `"w_pair"`.
    pub name: &'static str,
    /// Lower bound (linear units: metres or farads).
    pub lo: f64,
    /// Upper bound (linear units).
    pub hi: f64,
}

/// A candidate sizing: one value per [`VarDef`], linear units, in the order
/// returned by [`variables`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Values in linear units.
    pub values: Vec<f64>,
}

impl DesignPoint {
    /// Value of a named variable, or `None` when `name` is not a variable
    /// of `topology` or the point is shorter than the variable table.
    pub fn get(&self, topology: OpAmpTopology, name: &str) -> Option<f64> {
        let idx = variables(topology).iter().position(|v| v.name == name)?;
        self.values.get(idx).copied()
    }

    /// Converts to the log-space vector the annealer searches.
    pub fn to_log(&self) -> Vec<f64> {
        self.values.iter().map(|v| v.max(1e-30).ln()).collect()
    }

    /// Builds from a log-space vector.
    pub fn from_log(log: &[f64]) -> Self {
        DesignPoint {
            values: log.iter().map(|v| v.exp()).collect(),
        }
    }
}

/// The design variables of the two-stage Miller template, in evaluation
/// order. Buffered topologies append the buffer device widths.
pub fn variables(topology: OpAmpTopology) -> Vec<VarDef> {
    let mut v = vec![
        VarDef {
            name: "w_pair",
            lo: 1.8e-6,
            hi: 800e-6,
        },
        VarDef {
            name: "l_pair",
            lo: 1.2e-6,
            hi: 60e-6,
        },
        VarDef {
            name: "w_load",
            lo: 1.8e-6,
            hi: 800e-6,
        },
        VarDef {
            name: "w_m6",
            lo: 1.8e-6,
            hi: 1500e-6,
        },
        VarDef {
            name: "l_2",
            lo: 1.2e-6,
            hi: 60e-6,
        },
        VarDef {
            name: "w_m7",
            lo: 1.8e-6,
            hi: 800e-6,
        },
        VarDef {
            name: "w_tail",
            lo: 1.8e-6,
            hi: 800e-6,
        },
        VarDef {
            name: "cc",
            lo: 0.3e-12,
            hi: 30e-12,
        },
    ];
    if topology.buffer {
        v.push(VarDef {
            name: "w_buf",
            lo: 1.8e-6,
            hi: 1500e-6,
        });
        v.push(VarDef {
            name: "w_sink",
            lo: 1.8e-6,
            hi: 800e-6,
        });
    }
    v
}

/// Blind decade-wide intervals (Table 1 mode), in log space.
///
/// # Errors
///
/// [`OblxError::BadPoint`] if the built-in variable bounds were rejected —
/// unreachable for the shipped tables, but surfaced instead of panicking.
pub fn blind_ranges(topology: OpAmpTopology) -> Result<VectorRanges, OblxError> {
    let pairs = variables(topology)
        .iter()
        .map(|v| (v.lo.ln(), v.hi.ln()))
        .collect();
    VectorRanges::new(pairs).map_err(|e| OblxError::BadPoint(format!("blind bounds: {e}")))
}

/// APE-seeded intervals: ±`frac` around `point` (Table 4 mode, the paper
/// uses `frac = 0.2`), intersected with the blind bounds, in log space.
///
/// # Errors
///
/// [`OblxError::BadPoint`] if `point` has the wrong dimension for the
/// topology, or the resulting bounds are rejected.
pub fn seeded_ranges(
    topology: OpAmpTopology,
    point: &DesignPoint,
    frac: f64,
) -> Result<VectorRanges, OblxError> {
    let blind = blind_ranges(topology)?;
    let defs = variables(topology);
    if point.values.len() != defs.len() {
        return Err(OblxError::BadPoint(format!(
            "design point has {} values, topology needs {}",
            point.values.len(),
            defs.len()
        )));
    }
    // ±frac in linear space maps to ln(1±frac) offsets in log space.
    let lo_off = (1.0 - frac).ln();
    let hi_off = (1.0 + frac).ln();
    let pairs = point
        .values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let centre = v.max(1e-30).ln();
            let lo = (centre + lo_off).max(blind.lower()[i]);
            let hi = (centre + hi_off).min(blind.upper()[i]);
            if lo <= hi {
                (lo, hi)
            } else {
                (blind.lower()[i], blind.upper()[i])
            }
        })
        .collect();
    VectorRanges::new(pairs).map_err(|e| OblxError::BadPoint(format!("seeded bounds: {e}")))
}

/// Extracts the design point an APE-sized amplifier corresponds to — the
/// bridge from the estimator to the synthesis engine.
///
/// The template fixes its bias diode at `W_BIAS_DIODE/L_BIAS`, while APE
/// sizes its own diode; every width gated off that diode (tail, M7, buffer
/// sink) is rescaled so the mirror *current ratios* — hence the bias
/// currents — carry over exactly.
pub fn design_point_from_ape(tech: &ape_netlist::Technology, amp: &OpAmp) -> DesignPoint {
    use crate::template::{bias_diode_geometry, L_BIAS};
    // aspect_template / aspect_ape for equal mirrored currents. The
    // template sizes its diode with the same rule APE uses, so this scale
    // is near unity; keeping it exact protects against clamping artifacts.
    let diode = bias_diode_geometry(tech, amp.spec.ibias);
    let scale = diode.aspect() / amp.mb1.geometry.aspect();
    let l_2 = amp.m6.geometry.l;
    let mut values = vec![
        amp.stage1.input.geometry.w,
        amp.stage1.input.geometry.l,
        amp.stage1.load.geometry.w,
        amp.m6.geometry.w,
        l_2,
        amp.m7.geometry.aspect() * scale * l_2,
        amp.tail_devices[0].geometry.aspect() * scale * L_BIAS,
        amp.cc,
    ];
    if amp.topology.buffer {
        values.push(amp.mbuf.as_ref().map(|m| m.geometry.w).unwrap_or(10e-6));
        values.push(
            amp.msink
                .as_ref()
                .map(|m| m.geometry.aspect() * scale * L_BIAS)
                .unwrap_or(10e-6),
        );
    }
    // Clamp into the blind bounds so seeded intervals stay valid.
    let defs = variables(amp.topology);
    for (v, d) in values.iter_mut().zip(&defs) {
        *v = v.clamp(d.lo, d.hi);
    }
    DesignPoint { values }
}

/// The geometric centre of the blind space — the "no initial point" start.
///
/// # Errors
///
/// See [`blind_ranges`].
pub fn blind_center(topology: OpAmpTopology) -> Result<DesignPoint, OblxError> {
    Ok(DesignPoint::from_log(&blind_ranges(topology)?.center()))
}

/// Writes a synthesised design point back into an APE op-amp object, so
/// higher-level modules (filters, S&H, …) can re-emit their netlists with
/// the synthesised sizes — the "APE + ASTRX/OBLX" column of Table 5.
///
/// Only geometry and the compensation capacitor are replaced; the
/// performance attributes of the returned amplifier are stale and should
/// not be read (re-simulate instead).
pub fn apply_point_to_opamp(
    tech: &ape_netlist::Technology,
    amp: &OpAmp,
    point: &DesignPoint,
) -> OpAmp {
    use crate::template::{bias_diode_geometry, L_BIAS};
    use ape_netlist::MosGeometry;
    let v = &point.values;
    let mut a = amp.clone();
    if v.len() < 8 {
        debug_assert!(false, "design point too short for two-stage template");
        ape_probe::counter("oblx.vars.short_point", 1);
        return a;
    }
    a.stage1.input.geometry = MosGeometry::new(v[0], v[1]);
    a.stage1.load.geometry = MosGeometry::new(v[2], v[1]);
    a.m6.geometry = MosGeometry::new(v[3], v[4]);
    a.m7.geometry = MosGeometry::new(v[5], v[4]);
    a.mb1.geometry = bias_diode_geometry(tech, amp.spec.ibias);
    for d in &mut a.tail_devices {
        d.geometry = MosGeometry::new(v[6], L_BIAS);
    }
    a.cc = v[7];
    if a.topology.buffer && v.len() >= 10 {
        if let Some(m) = &mut a.mbuf {
            m.geometry = MosGeometry::new(v[8], L_BIAS);
        }
        if let Some(m) = &mut a.msink {
            m.geometry = MosGeometry::new(v[9], L_BIAS);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_core::basic::MirrorTopology;
    use ape_core::opamp::OpAmpSpec;
    use ape_netlist::Technology;

    fn topo() -> OpAmpTopology {
        OpAmpTopology::miller(MirrorTopology::Simple, false)
    }

    #[test]
    fn variable_count_depends_on_buffer() {
        assert_eq!(variables(topo()).len(), 8);
        let buffered = OpAmpTopology::miller(MirrorTopology::Simple, true);
        assert_eq!(variables(buffered).len(), 10);
    }

    #[test]
    fn log_roundtrip() {
        let p = DesignPoint {
            values: vec![10e-6, 2.4e-6, 20e-6, 50e-6, 1.2e-6, 8e-6, 12e-6, 2e-12],
        };
        let q = DesignPoint::from_log(&p.to_log());
        for (a, b) in p.values.iter().zip(&q.values) {
            assert!((a - b).abs() / a < 1e-12);
        }
    }

    #[test]
    fn seeded_ranges_are_tight() {
        let p = DesignPoint {
            values: vec![10e-6, 2.4e-6, 20e-6, 50e-6, 1.2e-6, 8e-6, 12e-6, 2e-12],
        };
        let seeded = seeded_ranges(topo(), &p, 0.2).unwrap();
        let blind = blind_ranges(topo()).unwrap();
        for i in 0..seeded.len() {
            let seeded_span = seeded.upper()[i] - seeded.lower()[i];
            let blind_span = blind.upper()[i] - blind.lower()[i];
            assert!(seeded_span < blind_span / 3.0, "variable {i} not tightened");
        }
        // The seed itself lies inside.
        assert!(seeded.contains(&p.to_log()));
    }

    #[test]
    fn ape_extraction_matches_topology() {
        let tech = Technology::default_1p2um();
        let spec = OpAmpSpec {
            gain: 150.0,
            ugf_hz: 3e6,
            area_max_m2: 3000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        };
        let amp = OpAmp::design(&tech, topo(), spec).unwrap();
        let p = design_point_from_ape(&tech, &amp);
        assert_eq!(p.values.len(), 8);
        assert!((p.get(topo(), "cc").unwrap() - amp.cc).abs() < 1e-15);
        assert!(p.get(topo(), "w_pair").unwrap() > 0.0);
    }

    #[test]
    fn named_access_returns_none_on_unknown() {
        let p = blind_center(topo()).unwrap();
        assert_eq!(p.get(topo(), "nope"), None);
        // A short point cannot index past its own length either.
        let short = DesignPoint { values: vec![1.0] };
        assert_eq!(short.get(topo(), "cc"), None);
    }

    #[test]
    fn seeded_ranges_reject_wrong_dimension() {
        let short = DesignPoint { values: vec![1.0] };
        assert!(matches!(
            seeded_ranges(topo(), &short, 0.2),
            Err(OblxError::BadPoint(_))
        ));
    }
}
