//! Fast candidate evaluation: DC operating point + AWE reduced model.
//!
//! ASTRX/OBLX evaluates each annealing move with AWE rather than a full
//! simulation (paper §3). The pipeline here is identical: nonlinear DC,
//! one linearisation, moment matching, and the performance questions are
//! answered on the reduced model.

use crate::template::{build_candidate, candidate_area};
use crate::vars::DesignPoint;
use ape_awe::{awe_transfer_auto, transfer_moments};
use ape_core::graph::{with_thread_graph, Component, EstimationGraph};
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use ape_core::ApeError;
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::Technology;
use ape_spice::linalg::Matrix;
use ape_spice::{dc_operating_point_with, linearize, Complex, DcOptions, LinearizedSystem};

/// How the annealing loop evaluates a candidate's frequency response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalFidelity {
    /// Padé (AWE) reduced model only — what ASTRX/OBLX used. Fast, but the
    /// model extrapolated decades past the dominant pole mispredicts the
    /// crossover, so "converged" designs can fail the audit: the Table 1
    /// phenomenon.
    #[default]
    AweOnly,
    /// Exact complex solves of the linearised system at the crossover.
    /// A dozen extra small LU solves per candidate; audits agree with the
    /// search. Used by the ablation study.
    Exact,
}

/// Everything the cost function needs to know about one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEval {
    /// Did the DC operating point converge?
    pub dc_ok: bool,
    /// Low-frequency differential gain magnitude.
    pub gain: f64,
    /// Unity-gain frequency, hertz (`None` when the gain never reaches 1 or
    /// the reduced model is unusable).
    pub ugf_hz: Option<f64>,
    /// Phase margin estimated on the AWE model, degrees (`None` without a
    /// usable UGF).
    pub pm_deg: Option<f64>,
    /// Gate area, square metres.
    pub area_m2: f64,
    /// Supply power, watts.
    pub power_w: f64,
}

/// Evaluates one candidate sizing.
///
/// Never returns an error: failures downgrade gracefully (a broken DC point
/// scores `dc_ok = false`, an AWE failure loses only the UGF figure), so
/// the annealer can keep moving through infeasible regions — the behaviour
/// OBLX gets from its relaxed-DC formulation.
pub fn evaluate_candidate(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    point: &DesignPoint,
) -> CandidateEval {
    evaluate_candidate_with(tech, topology, spec, point, EvalFidelity::Exact)
}

/// Graph node memoizing [`evaluate_candidate_with`].
///
/// The annealing loop re-visits design points — a rejected move returns to
/// the previous point, and sweep neighbours share a candidate with their
/// origin — and [`CandidateEval`] is a pure function of
/// `(topology, spec, point, fidelity)`, so the shared estimation graph can
/// answer repeats without re-running the DC + AWE pipeline.
#[derive(Debug, Clone)]
struct CandidateNode {
    topology: OpAmpTopology,
    spec: OpAmpSpec,
    values: Vec<f64>,
    fidelity: EvalFidelity,
}

impl Component for CandidateNode {
    type Output = CandidateEval;

    fn kind(&self) -> &'static str {
        "oblx.candidate"
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = self
            .spec
            .fold_fingerprint(self.topology.fold_fingerprint(Fingerprint::new()))
            .u8(match self.fidelity {
                EvalFidelity::AweOnly => 0,
                EvalFidelity::Exact => 1,
            })
            .u64(self.values.len() as u64);
        for v in &self.values {
            fp = fp.f64(*v);
        }
        fp.finish()
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<CandidateEval, ApeError> {
        let point = DesignPoint {
            values: self.values.clone(),
        };
        Ok(evaluate_candidate_uncached(
            graph.technology(),
            self.topology,
            &self.spec,
            &point,
            self.fidelity,
        ))
    }
}

/// [`evaluate_candidate`] with an explicit evaluation fidelity.
///
/// Memoized on the thread's estimation graph under the `oblx.candidate`
/// kind; the cost-eval counters count *requests*, while memo effectiveness
/// shows up in the `ape.graph.oblx.candidate.*` counters.
pub fn evaluate_candidate_with(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    point: &DesignPoint,
    fidelity: EvalFidelity,
) -> CandidateEval {
    match fidelity {
        EvalFidelity::AweOnly => ape_probe::counter("oblx.cost_evals.awe", 1),
        EvalFidelity::Exact => ape_probe::counter("oblx.cost_evals.exact", 1),
    }
    with_thread_graph(tech, |g| {
        g.evaluate(&CandidateNode {
            topology,
            spec: *spec,
            values: point.values.clone(),
            fidelity,
        })
    })
    .unwrap_or_else(|_| evaluate_candidate_uncached(tech, topology, spec, point, fidelity))
}

/// [`evaluate_candidate_with`] without the graph memo — the node's compute
/// body.
fn evaluate_candidate_uncached(
    tech: &Technology,
    topology: OpAmpTopology,
    spec: &OpAmpSpec,
    point: &DesignPoint,
    fidelity: EvalFidelity,
) -> CandidateEval {
    let area = candidate_area(tech, topology, spec, point);
    let mut eval = CandidateEval {
        dc_ok: false,
        gain: 0.0,
        ugf_hz: None,
        pm_deg: None,
        area_m2: area,
        power_w: 0.0,
    };
    let Ok((ckt, out)) = build_candidate(tech, topology, spec, point) else {
        return eval;
    };
    // A tighter iteration budget than the default keeps the annealing loop
    // fast; marginal operating points count as failures, which is what a
    // cost function wants anyway.
    let opts = DcOptions {
        max_iter: 80,
        ..DcOptions::default()
    };
    let Ok(op) = dc_operating_point_with(&ckt, tech, opts) else {
        return eval;
    };
    eval.dc_ok = true;
    eval.power_w = op.supply_power(&ckt);
    let Ok(sys) = linearize(&ckt, tech, &op) else {
        return eval;
    };
    // DC gain from the zeroth AWE moment (one real back-substitution).
    let Ok(m) = transfer_moments(&sys, out, 1) else {
        return eval;
    };
    eval.gain = m[0].abs();
    if eval.gain <= 1.0 {
        return eval;
    }
    match fidelity {
        EvalFidelity::AweOnly => {
            // Order-3 Padé model, as ASTRX/OBLX evaluated candidates; the
            // model's own phase is unwrapped analytically along a grid.
            if let Ok(model) = awe_transfer_auto(&sys, out, 3) {
                eval.ugf_hz = model.unity_gain_hz();
                if let Some(fu) = eval.ugf_hz {
                    eval.pm_deg = Some(model_phase_margin(&model, fu));
                }
            }
        }
        EvalFidelity::Exact => {
            // UGF and phase margin from direct complex solves of the
            // linearised system at the crossover — a dozen small complex
            // LU solves per candidate.
            if let Some(row) = sys.node_row(out) {
                if let Some((fu, _)) = find_unity_crossing(&sys, row) {
                    eval.ugf_hz = Some(fu);
                    eval.pm_deg =
                        unwrapped_phase_at(&sys, row, fu).map(|ph| 180.0 + ph.to_degrees());
                }
            }
        }
    }
    eval
}

/// Unwrapped phase margin of a reduced model at its crossover (walking a
/// geometric grid keeps track of wraps the bare `arg()` cannot see).
fn model_phase_margin(model: &ape_awe::ReducedModel, fu: f64) -> f64 {
    let f_start = (fu / 1e5).max(10.0).min(fu);
    let steps = 24usize;
    let eval_at = |f: f64| {
        model
            .eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f))
            .arg()
    };
    let mut prev = eval_at(f_start);
    let mut offset = 0.0;
    for k in 1..=steps {
        let f = f_start * (fu / f_start).powf(k as f64 / steps as f64);
        let raw = eval_at(f);
        let mut ph = raw + offset;
        while ph - prev > std::f64::consts::PI {
            offset -= 2.0 * std::f64::consts::PI;
            ph = raw + offset;
        }
        while ph - prev < -std::f64::consts::PI {
            offset += 2.0 * std::f64::consts::PI;
            ph = raw + offset;
        }
        prev = ph;
    }
    180.0 + prev.to_degrees()
}

/// Phase at `f_target`, unwrapped by walking a geometric grid up from the
/// flat low-frequency region — `arg()` alone cannot see wraps past ±180°.
fn unwrapped_phase_at(sys: &LinearizedSystem, row: usize, f_target: f64) -> Option<f64> {
    let f_start = (f_target / 1e5).max(10.0).min(f_target);
    let steps = 6 * ((f_target / f_start).log10().ceil() as usize).max(1);
    let mut prev = solve_at(sys, row, f_start)?.arg();
    let mut offset = 0.0;
    for k in 1..=steps {
        let f = f_start * (f_target / f_start).powf(k as f64 / steps as f64);
        let raw = solve_at(sys, row, f)?.arg();
        let mut ph = raw + offset;
        while ph - prev > std::f64::consts::PI {
            offset -= 2.0 * std::f64::consts::PI;
            ph = raw + offset;
        }
        while ph - prev < -std::f64::consts::PI {
            offset += 2.0 * std::f64::consts::PI;
            ph = raw + offset;
        }
        prev = ph;
    }
    Some(prev)
}

/// Solves `(G + jωC)x = b` at one frequency and returns the output phasor.
fn solve_at(sys: &LinearizedSystem, row: usize, f: f64) -> Option<Complex> {
    let w = 2.0 * std::f64::consts::PI * f;
    let n = sys.g.dim();
    let mut m = Matrix::<Complex>::zeros(n);
    for r in 0..n {
        for c in 0..n {
            let re = sys.g[(r, c)];
            let im = w * sys.c[(r, c)];
            if re != 0.0 || im != 0.0 {
                m[(r, c)] = Complex::new(re, im);
            }
        }
    }
    let mut x: Vec<Complex> = sys.b.iter().map(|&v| Complex::real(v)).collect();
    m.solve_in_place(&mut x)?;
    Some(x[row])
}

/// Log-bisection for the first `|H| = 1` crossing between 1 kHz and 10 GHz.
fn find_unity_crossing(sys: &LinearizedSystem, row: usize) -> Option<(f64, Complex)> {
    let mut lo = 1e3;
    let mut h_lo = solve_at(sys, row, lo)?;
    if h_lo.norm() < 1.0 {
        return Some((lo, h_lo));
    }
    let mut hi = lo;
    loop {
        hi *= 10.0;
        if hi > 1e10 {
            return None;
        }
        let h = solve_at(sys, row, hi)?;
        if h.norm() < 1.0 {
            break;
        }
        lo = hi;
        h_lo = h;
    }
    let _ = h_lo;
    for _ in 0..24 {
        let mid = (lo * hi).sqrt();
        let h = solve_at(sys, row, mid)?;
        if h.norm() < 1.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let fu = (lo * hi).sqrt();
    let h = solve_at(sys, row, fu)?;
    Some((fu, h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::{blind_center, design_point_from_ape};
    use ape_core::basic::MirrorTopology;
    use ape_core::opamp::{OpAmp, OpAmpTopology};

    fn topo() -> OpAmpTopology {
        OpAmpTopology::miller(MirrorTopology::Simple, false)
    }

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    #[test]
    fn ape_point_evaluates_close_to_spec() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let point = design_point_from_ape(&tech, &amp);
        let e = evaluate_candidate(&tech, topo(), &spec(), &point);
        assert!(e.dc_ok);
        assert!(e.gain > 100.0, "awe gain {}", e.gain);
        let ugf = e.ugf_hz.expect("gain > 1 must yield a UGF");
        assert!(
            (ugf - 5e6).abs() / 5e6 < 0.6,
            "awe ugf {ugf} vs 5 MHz target"
        );
        let pm = e.pm_deg.expect("ugf implies a phase margin");
        assert!(pm > 30.0, "APE designs are compensated, pm = {pm}");
        assert!(e.power_w > 0.0);
    }

    #[test]
    fn fidelities_agree_on_well_behaved_designs() {
        // On a compensated design the order-3 Padé crossover matches the
        // exact complex-solve crossover — the reason Table 1's blind engine
        // is stronger than 1999's (see EXPERIMENTS.md).
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(&tech, topo(), spec()).unwrap();
        let p = design_point_from_ape(&tech, &amp);
        let awe = evaluate_candidate_with(&tech, topo(), &spec(), &p, EvalFidelity::AweOnly);
        let exact = evaluate_candidate_with(&tech, topo(), &spec(), &p, EvalFidelity::Exact);
        let (fa, fe) = (awe.ugf_hz.unwrap(), exact.ugf_hz.unwrap());
        assert!((fa - fe).abs() / fe < 0.05, "ugf awe {fa} vs exact {fe}");
        let (pa, pe) = (awe.pm_deg.unwrap(), exact.pm_deg.unwrap());
        assert!((pa - pe).abs() < 10.0, "pm awe {pa} vs exact {pe}");
    }

    #[test]
    fn blind_center_evaluates_without_panic() {
        let tech = Technology::default_1p2um();
        let p = blind_center(topo()).unwrap();
        let e = evaluate_candidate(&tech, topo(), &spec(), &p);
        // Whatever the numbers, the evaluation must complete and the area
        // formula must fire.
        assert!(e.area_m2 > 0.0);
    }

    #[test]
    fn degenerate_point_downgrades_gracefully() {
        let tech = Technology::default_1p2um();
        // All minimum geometry: almost certainly a broken bias point, but
        // never a panic.
        let defs = crate::vars::variables(topo());
        let p = DesignPoint {
            values: defs.iter().map(|d| d.lo).collect(),
        };
        let e = evaluate_candidate(&tech, topo(), &spec(), &p);
        assert!(e.area_m2 > 0.0);
        let _ = e.dc_ok; // may be either; the point is no-panic
    }
}
