//! SPICE-anchored calibration fitting over op-amp audits.
//!
//! The estimation side of the composition equations is cheap; the
//! simulator is the anchor. This module drives both over a workload of
//! op-amp specifications: APE sizes each spec (the *estimate*), the full
//! simulator audits the sized design through [`audit_candidate`] (the
//! *simulation*), and the per-metric est/sim ratios feed
//! [`ape_calib::fit`] to produce an `l3.opamp` correction table.
//!
//! Audits dominate the wall clock, so they fan out over the process-wide
//! [`ape_exec::Executor`]; samples are collected back in workload order,
//! which keeps the fitted table deterministic for a given technology and
//! workload regardless of worker count.

use crate::audit::audit_candidate;
use crate::error::OblxError;
use crate::vars::design_point_from_ape;
use ape_calib::{Calibration, Sample};
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_core::Performance;
use ape_netlist::Technology;

/// Fractional slack used when auditing fit-workload designs. The fitter
/// only needs the measured numbers, not a pass/fail verdict, so the
/// tolerance is loose.
const FIT_AUDIT_TOL: f64 = 0.5;

/// The `±interval_frac` the paper uses around an APE seed when the
/// estimates are raw (`InitialPoint::ApeSeeded`).
pub const SEED_INTERVAL_RAW: f64 = 0.2;

/// Tighter seed interval justified once a calibration table anchors the
/// estimates to the simulator: corrected estimates land closer to the
/// audited optimum, so the search box can shrink.
pub const SEED_INTERVAL_CALIBRATED: f64 = 0.12;

/// Seed interval to use with [`InitialPoint::ApeSeeded`]
/// (±fraction around the APE sizing): the paper's ±20 % for raw
/// estimates, tightened to ±12 % when a non-empty calibration table is
/// installed for the estimator.
///
/// [`InitialPoint::ApeSeeded`]: crate::InitialPoint::ApeSeeded
#[must_use]
pub fn seed_interval_frac(cal: Option<&Calibration>) -> f64 {
    match cal {
        Some(c) if !c.is_empty() => SEED_INTERVAL_CALIBRATED,
        _ => SEED_INTERVAL_RAW,
    }
}

/// Collects est/sim samples for one audited op-amp: every metric the
/// audit actually measures, paired with the estimate APE composed.
fn opamp_samples(est: &Performance, sim: &Performance) -> Vec<Sample> {
    let mut out = Vec::new();
    let mut push_opt = |metric: &str, e: Option<f64>, s: Option<f64>| {
        if let (Some(e), Some(s)) = (e, s) {
            out.push(Sample::new("l3.opamp", metric, e, s));
        }
    };
    push_opt("dc_gain", est.dc_gain, sim.dc_gain);
    push_opt("ugf_hz", est.ugf_hz, sim.ugf_hz);
    push_opt("bw_hz", est.bw_hz, sim.bw_hz);
    out.push(Sample::new("l3.opamp", "power_w", est.power_w, sim.power_w));
    out
}

/// Fits an `l3.opamp` calibration table for `tech` from a workload of
/// op-amp specifications.
///
/// Each spec is sized by APE *uncalibrated* (any thread calibration is
/// suspended for the duration, so fitting is independent of whatever
/// table happens to be installed), audited with the full simulator, and
/// the pooled est/sim ratios per metric are fitted with the minimax
/// constant-factor rule of [`ape_calib::fit`]. Specs whose sizing or
/// audit fails are skipped — the paper's "doesn't work" rows carry no
/// anchor information.
///
/// # Errors
///
/// * [`OblxError::AuditFailed`] when *every* workload entry fails to
///   size or audit — an empty sample pool fits nothing.
/// * [`OblxError::Cancelled`] when the thread-current cancellation token
///   fires mid-workload.
pub fn fit_opamp_calibration(
    tech: &Technology,
    workload: &[(OpAmpTopology, OpAmpSpec)],
    label: &str,
) -> Result<Calibration, OblxError> {
    let _span = ape_probe::span("oblx.calibrate.fit");
    // Fit from raw estimates: corrections compose multiplicatively, so
    // fitting on top of an installed table would double-apply.
    let prev = ape_core::graph::thread_calibration();
    ape_core::graph::set_thread_calibration(None);
    let result = fit_uncalibrated(tech, workload, label);
    ape_core::graph::set_thread_calibration(prev);
    result
}

fn fit_uncalibrated(
    tech: &Technology,
    workload: &[(OpAmpTopology, OpAmpSpec)],
    label: &str,
) -> Result<Calibration, OblxError> {
    // Size the whole workload first — designs fan out over the executor
    // and share subtrees through the thread graph.
    let designs = OpAmp::design_many(tech, workload);
    // Audit the successful sizings. `audit_candidate` checks the
    // cancellation token itself; a cancelled slot aborts the fit.
    let mut samples: Vec<Sample> = Vec::new();
    for (slot, design) in workload.iter().zip(designs) {
        let Ok(amp) = design else { continue };
        let point = design_point_from_ape(tech, &amp);
        match audit_candidate(tech, slot.0, &slot.1, &point, FIT_AUDIT_TOL) {
            Ok(report) => samples.extend(opamp_samples(&amp.perf, &report.measured)),
            Err(OblxError::Cancelled) => return Err(OblxError::Cancelled),
            Err(_) => {} // "doesn't work" row: no anchor
        }
    }
    if samples.is_empty() {
        return Err(OblxError::AuditFailed(
            "calibration fit: no workload entry produced an audited design".into(),
        ));
    }
    ape_calib::fit(tech.fingerprint(), label, &samples)
        .map_err(|e| OblxError::AuditFailed(format!("calibration fit: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_core::basic::MirrorTopology;

    fn workload() -> Vec<(OpAmpTopology, OpAmpSpec)> {
        let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
        [(200.0, 5e6, 10e-6), (400.0, 2e6, 5e-6)]
            .into_iter()
            .map(|(gain, ugf_hz, ibias)| {
                (
                    topo,
                    OpAmpSpec {
                        gain,
                        ugf_hz,
                        area_max_m2: 5000e-12,
                        ibias,
                        zout_ohm: None,
                        cl: 10e-12,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn fit_is_deterministic_and_tightens_the_workload() {
        let tech = Technology::default_1p2um();
        let cal = fit_opamp_calibration(&tech, &workload(), "test-fit").unwrap();
        let again = fit_opamp_calibration(&tech, &workload(), "test-fit").unwrap();
        assert_eq!(
            cal.fingerprint(),
            again.fingerprint(),
            "fit must be deterministic"
        );
        assert_eq!(cal.technology_fingerprint(), tech.fingerprint());
        // The audited workload disagrees with the raw estimates by more
        // than nothing, so at least one correction must have been fitted.
        assert!(!cal.is_empty(), "expected at least one fitted correction");
        // Fitted corrections never target the excluded metrics.
        for (_, metric, _) in cal.iter() {
            assert!(!ape_calib::FIT_EXCLUDED_METRICS.contains(&metric));
        }
    }

    #[test]
    fn empty_workload_is_a_typed_error() {
        let tech = Technology::default_1p2um();
        let err = fit_opamp_calibration(&tech, &[], "empty").unwrap_err();
        assert!(matches!(err, OblxError::AuditFailed(_)));
    }

    #[test]
    fn seed_interval_tightens_only_with_a_real_table() {
        assert_eq!(seed_interval_frac(None), SEED_INTERVAL_RAW);
        let id = Calibration::identity(1, "id");
        assert_eq!(seed_interval_frac(Some(&id)), SEED_INTERVAL_RAW);
        let mut cal = Calibration::identity(1, "t");
        cal.set("l3.opamp", "dc_gain", 0.9, &[]).unwrap();
        assert_eq!(seed_interval_frac(Some(&cal)), SEED_INTERVAL_CALIBRATED);
    }
}
