//! Circuit netlist representation for the APE reproduction.
//!
//! This crate is the shared vocabulary of the workspace: every other crate
//! (the device models in `ape-mos`, the simulator in `ape-spice`, the
//! synthesis engine in `ape-oblx` and the estimator in `ape-core`) speaks in
//! terms of the [`Circuit`] type defined here.
//!
//! The representation intentionally mirrors a classic SPICE deck:
//!
//! * a set of named nodes (ground is always node `0`),
//! * a list of [`Element`]s (resistors, capacitors, sources, MOSFETs, ...),
//! * a [`Technology`] holding the MOS model cards of a fabrication process.
//!
//! # Example
//!
//! Build a resistive divider and print it as a SPICE deck:
//!
//! ```
//! use ape_netlist::{Circuit, Technology};
//!
//! # fn main() -> Result<(), ape_netlist::NetlistError> {
//! let mut ckt = Circuit::new("divider");
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vdc("V1", vin, Circuit::GROUND, 5.0);
//! ckt.add_resistor("R1", vin, vout, 10e3)?;
//! ckt.add_resistor("R2", vout, Circuit::GROUND, 10e3)?;
//! assert_eq!(ckt.num_nodes(), 3); // ground + 2
//! println!("{}", ckt.to_spice_deck(&Technology::default_1p2um()));
//! # Ok(())
//! # }
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod corners;
mod element;
mod error;
mod node;
mod parse;
mod process;
mod units;

pub use circuit::{Circuit, CircuitStats};
pub use corners::{Corner, CORNER_DKP, CORNER_DVTO};
pub use element::{Element, ElementKind, MosGeometry, MosPolarity, SourceWaveform};
pub use error::NetlistError;
pub use node::NodeId;
pub use parse::parse_spice;
pub use process::{MosLevel, MosModelCard, Technology};
pub use units::{format_si, parse_value};
