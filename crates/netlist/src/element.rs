//! Circuit elements.

use crate::node::NodeId;
use std::fmt;

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosPolarity {
    /// Sign convention multiplier: `+1` for NMOS, `-1` for PMOS.
    ///
    /// PMOS equations are evaluated on sign-flipped terminal voltages.
    pub fn sign(self) -> f64 {
        match self {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        }
    }
}

impl fmt::Display for MosPolarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosPolarity::Nmos => write!(f, "NMOS"),
            MosPolarity::Pmos => write!(f, "PMOS"),
        }
    }
}

/// Physical geometry of a MOSFET instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosGeometry {
    /// Drawn channel width in metres.
    pub w: f64,
    /// Drawn channel length in metres.
    pub l: f64,
    /// Parallel device multiplicity.
    pub m: f64,
}

impl MosGeometry {
    /// Creates a geometry with multiplicity 1.
    pub fn new(w: f64, l: f64) -> Self {
        MosGeometry { w, l, m: 1.0 }
    }

    /// Effective aspect ratio `m * W / L`.
    pub fn aspect(&self) -> f64 {
        self.m * self.w / self.l
    }

    /// Gate area `m * W * L` in square metres.
    pub fn gate_area(&self) -> f64 {
        self.m * self.w * self.l
    }
}

/// Time-domain waveform of an independent source.
///
/// The `dc` value used by operating-point analysis is carried separately on
/// the element; this enum describes the transient shape.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant at the DC value.
    Dc,
    /// Trapezoidal pulse: `v1` → `v2` with delay, rise, fall, width, period.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width, seconds.
        width: f64,
        /// Repetition period, seconds (`f64::INFINITY` for single-shot).
        period: f64,
    },
    /// Sinusoid `offset + ampl * sin(2π f (t - delay))` for `t >= delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
    },
    /// Piece-wise linear list of `(time, value)` corner points.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWaveform {
    /// Evaluates the waveform at time `t`, given the element's DC value.
    pub fn value_at(&self, t: f64, dc: f64) -> f64 {
        match self {
            SourceWaveform::Dc => dc,
            SourceWaveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tau < rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            SourceWaveform::Sin {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            SourceWaveform::Pwl(points) => {
                if points.is_empty() {
                    return dc;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

/// The element variants a [`crate::Circuit`] can contain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ElementKind {
    /// Linear resistor (ohms).
    Resistor {
        /// Resistance in ohms; must be positive.
        ohms: f64,
    },
    /// Linear capacitor (farads).
    Capacitor {
        /// Capacitance in farads; must be positive.
        farads: f64,
    },
    /// Linear inductor (henries).
    Inductor {
        /// Inductance in henries; must be positive.
        henries: f64,
    },
    /// Independent voltage source.
    VoltageSource {
        /// DC value in volts.
        dc: f64,
        /// Small-signal AC magnitude (volts) used by AC analysis.
        ac_mag: f64,
        /// Transient waveform.
        waveform: SourceWaveform,
    },
    /// Independent current source (flows from node `a` through the source to node `b`).
    CurrentSource {
        /// DC value in amperes.
        dc: f64,
        /// Small-signal AC magnitude (amperes).
        ac_mag: f64,
        /// Transient waveform.
        waveform: SourceWaveform,
    },
    /// Voltage-controlled voltage source `v(a,b) = gain * v(cp,cn)`.
    Vcvs {
        /// Voltage gain.
        gain: f64,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
    },
    /// Voltage-controlled current source `i(a→b) = gm * v(cp,cn)`.
    Vccs {
        /// Transconductance in siemens.
        gm: f64,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
    },
    /// MOS transistor. Terminals: `a` = drain, `b` = gate; source/bulk below.
    Mosfet {
        /// Channel polarity.
        polarity: MosPolarity,
        /// Name of the model card in the [`crate::Technology`].
        model: String,
        /// Device geometry.
        geometry: MosGeometry,
        /// Source terminal.
        source: NodeId,
        /// Bulk terminal.
        bulk: NodeId,
    },
    /// Voltage-controlled ideal switch between nodes `a` and `b`.
    Switch {
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Control threshold voltage: above → on.
        vt: f64,
        /// On-resistance in ohms.
        ron: f64,
        /// Off-resistance in ohms.
        roff: f64,
    },
}

/// A named two-(or more-)terminal element instance.
///
/// `a` and `b` are the primary terminal pair (for a MOSFET they are drain and
/// gate; source and bulk live in the variant). This layout keeps the common
/// case — two-terminal branches — flat and cache-friendly for the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Unique instance name, e.g. `"R1"` or `"M3"`.
    pub name: String,
    /// First terminal (positive node / drain).
    pub a: NodeId,
    /// Second terminal (negative node / gate).
    pub b: NodeId,
    /// The element variant and its parameters.
    pub kind: ElementKind,
}

impl Element {
    /// All nodes this element touches, in terminal order.
    pub fn nodes(&self) -> Vec<NodeId> {
        match &self.kind {
            ElementKind::Vcvs { cp, cn, .. }
            | ElementKind::Vccs { cp, cn, .. }
            | ElementKind::Switch { cp, cn, .. } => vec![self.a, self.b, *cp, *cn],
            ElementKind::Mosfet { source, bulk, .. } => vec![self.a, self.b, *source, *bulk],
            _ => vec![self.a, self.b],
        }
    }

    /// `true` if this element adds a branch current unknown to the MNA system
    /// (voltage sources, VCVS, inductors).
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self.kind,
            ElementKind::VoltageSource { .. }
                | ElementKind::Vcvs { .. }
                | ElementKind::Inductor { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_signs() {
        assert_eq!(MosPolarity::Nmos.sign(), 1.0);
        assert_eq!(MosPolarity::Pmos.sign(), -1.0);
    }

    #[test]
    fn geometry_aspect_and_area() {
        let g = MosGeometry::new(10e-6, 2e-6);
        assert!((g.aspect() - 5.0).abs() < 1e-12);
        assert!((g.gate_area() - 20e-12).abs() < 1e-24);
        let g2 = MosGeometry { m: 4.0, ..g };
        assert!((g2.aspect() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = SourceWaveform::Pulse {
            v1: 0.0,
            v2: 5.0,
            delay: 1e-6,
            rise: 1e-7,
            fall: 1e-7,
            width: 1e-6,
            period: f64::INFINITY,
        };
        assert_eq!(w.value_at(0.0, 0.0), 0.0);
        assert!((w.value_at(1.05e-6, 0.0) - 2.5).abs() < 1e-9);
        assert_eq!(w.value_at(1.5e-6, 0.0), 5.0);
        assert_eq!(w.value_at(5.0e-6, 0.0), 0.0);
    }

    #[test]
    fn sin_waveform_shape() {
        let w = SourceWaveform::Sin {
            offset: 2.5,
            ampl: 1.0,
            freq: 1e3,
            delay: 0.0,
        };
        assert!((w.value_at(0.0, 0.0) - 2.5).abs() < 1e-12);
        assert!((w.value_at(0.25e-3, 0.0) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn pwl_interpolates() {
        let w = SourceWaveform::Pwl(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)]);
        assert_eq!(w.value_at(-1.0, 0.0), 0.0);
        assert!((w.value_at(0.5, 0.0) - 5.0).abs() < 1e-12);
        assert_eq!(w.value_at(1.5, 0.0), 10.0);
        assert_eq!(w.value_at(3.0, 0.0), 10.0);
    }

    #[test]
    fn pulse_periodic_repeats() {
        let w = SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-9,
            fall: 1e-9,
            width: 0.5e-6,
            period: 1e-6,
        };
        assert_eq!(w.value_at(0.25e-6, 0.0), 1.0);
        assert_eq!(w.value_at(1.25e-6, 0.0), 1.0);
        assert_eq!(w.value_at(0.75e-6, 0.0), 0.0);
        assert_eq!(w.value_at(1.75e-6, 0.0), 0.0);
    }

    #[test]
    fn branch_current_flags() {
        let v = Element {
            name: "V1".into(),
            a: NodeId::new(1),
            b: NodeId::GROUND,
            kind: ElementKind::VoltageSource {
                dc: 1.0,
                ac_mag: 0.0,
                waveform: SourceWaveform::Dc,
            },
        };
        assert!(v.needs_branch_current());
        let r = Element {
            name: "R1".into(),
            a: NodeId::new(1),
            b: NodeId::GROUND,
            kind: ElementKind::Resistor { ohms: 1.0 },
        };
        assert!(!r.needs_branch_current());
    }
}
