//! Engineering-notation value parsing and formatting.
//!
//! SPICE decks write `10u` for ten microvolts and `1.5MEG` for 1.5 MΩ; this
//! module converts between those strings and `f64`.

use crate::error::NetlistError;

/// Parses a SPICE-style numeric literal with an optional engineering suffix.
///
/// Recognised suffixes (case-insensitive): `t`, `g`, `meg`, `k`, `m`, `u`,
/// `n`, `p`, `f`. Any trailing unit letters after the suffix are ignored,
/// matching SPICE behaviour (`10uF` parses as `10e-6`). Note `m` is milli and
/// `meg` is mega, as in SPICE.
///
/// # Errors
///
/// Returns [`NetlistError::ParseValue`] if the mantissa is not a valid float.
///
/// # Example
///
/// ```
/// use ape_netlist::parse_value;
/// # fn main() -> Result<(), ape_netlist::NetlistError> {
/// assert_eq!(parse_value("2.5k")?, 2.5e3);
/// assert_eq!(parse_value("1meg")?, 1.0e6);
/// assert!((parse_value("10uF")? - 10.0e-6).abs() < 1e-15);
/// assert_eq!(parse_value("-3.3")?, -3.3);
/// # Ok(())
/// # }
/// ```
pub fn parse_value(text: &str) -> Result<f64, NetlistError> {
    let s = text.trim();
    if s.is_empty() {
        return Err(NetlistError::ParseValue(text.to_string()));
    }
    // Split mantissa (digits, sign, dot, exponent) from the suffix.
    let mut split = s.len();
    let bytes = s.as_bytes();
    let mut i = 0;
    // Optional sign.
    if bytes[i] == b'+' || bytes[i] == b'-' {
        i += 1;
    }
    let mut seen_digit = false;
    while i < s.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() || c == '.' {
            seen_digit |= c.is_ascii_digit();
            i += 1;
        } else if (c == 'e' || c == 'E') && seen_digit {
            // A bare `e`/`E` with no digits after it is ambiguous between a
            // malformed exponent ("1e-") and a unit ("1eV"). Treat `e`
            // followed by a sign but no digit as malformed: "1e-" and "1e+"
            // look like truncated exponents, not units.
            let next = bytes.get(i + 1).copied().map(|b| b as char);
            if matches!(next, Some('+') | Some('-'))
                && !bytes
                    .get(i + 2)
                    .copied()
                    .is_some_and(|b| (b as char).is_ascii_digit())
            {
                return Err(NetlistError::ParseValue(text.to_string()));
            }
            // Could be an exponent ("1e3") or the start of a unit. Accept it
            // as an exponent only when followed by a digit or sign+digit.
            let next = bytes.get(i + 1).copied().map(|b| b as char);
            let next2 = bytes.get(i + 2).copied().map(|b| b as char);
            match (next, next2) {
                (Some(d), _) if d.is_ascii_digit() => {
                    i += 2;
                    while i < s.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                (Some('+'), Some(d)) | (Some('-'), Some(d)) if d.is_ascii_digit() => {
                    i += 3;
                    while i < s.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                _ => {}
            }
            split = i;
            break;
        } else {
            break;
        }
    }
    if i <= s.len() {
        split = i;
    }
    // A mantissa with no digit at all ("." , "+." , "+k") is never a number,
    // regardless of what the float parser would make of the prefix.
    if !seen_digit {
        return Err(NetlistError::ParseValue(text.to_string()));
    }
    let (mant, suffix) = s.split_at(split);
    let base: f64 = mant
        .parse()
        .map_err(|_| NetlistError::ParseValue(text.to_string()))?;
    let mult = suffix_multiplier(suffix);
    Ok(base * mult)
}

fn suffix_multiplier(suffix: &str) -> f64 {
    let lower = suffix.to_ascii_lowercase();
    if lower.starts_with("meg") {
        return 1e6;
    }
    if lower.starts_with("mil") {
        return 25.4e-6;
    }
    match lower.chars().next() {
        Some('t') => 1e12,
        Some('g') => 1e9,
        Some('k') => 1e3,
        Some('m') => 1e-3,
        Some('u') => 1e-6,
        Some('n') => 1e-9,
        Some('p') => 1e-12,
        Some('f') => 1e-15,
        _ => 1.0,
    }
}

/// Formats a value in engineering notation with an SI prefix.
///
/// Intended for human-readable reports; `format_si(2.2e-6, "F")` yields
/// `"2.2uF"` (the micro prefix is spelled `u` to stay ASCII, as SPICE does).
///
/// # Example
///
/// ```
/// use ape_netlist::format_si;
/// assert_eq!(format_si(4.7e3, "ohm"), "4.7kohm");
/// assert_eq!(format_si(0.0, "V"), "0V");
/// ```
pub fn format_si(value: f64, unit: &str) -> String {
    if !value.is_finite() {
        // NaN/±inf would otherwise fall through every magnitude threshold
        // into the femto branch and render as "NaNf…"/"inff…".
        return format!("{value}{unit}");
    }
    if value == 0.0 {
        return format!("0{unit}");
    }
    let mag = value.abs();
    let (scaled, prefix) = if mag >= 1e12 {
        (value / 1e12, "T")
    } else if mag >= 1e9 {
        (value / 1e9, "G")
    } else if mag >= 1e6 {
        // SPICE parses a bare `M` as milli; mega must be spelled `meg`.
        (value / 1e6, "meg")
    } else if mag >= 1e3 {
        (value / 1e3, "k")
    } else if mag >= 1.0 {
        (value, "")
    } else if mag >= 1e-3 {
        (value / 1e-3, "m")
    } else if mag >= 1e-6 {
        (value / 1e-6, "u")
    } else if mag >= 1e-9 {
        (value / 1e-9, "n")
    } else if mag >= 1e-12 {
        (value / 1e-12, "p")
    } else {
        (value / 1e-15, "f")
    };
    // Trim trailing zeros from a fixed 4-significant-digit rendering.
    let mut num = format!("{scaled:.4}");
    while num.contains('.') && (num.ends_with('0') || num.ends_with('.')) {
        num.pop();
    }
    format!("{num}{prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("42").unwrap(), 42.0);
        assert_eq!(parse_value("-1.5").unwrap(), -1.5);
        assert_eq!(parse_value("1e3").unwrap(), 1000.0);
        assert_eq!(parse_value("2.5e-6").unwrap(), 2.5e-6);
        assert_eq!(parse_value("1e+2").unwrap(), 100.0);
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * b.abs().max(1.0)
    }

    #[test]
    fn engineering_suffixes() {
        assert!(close(parse_value("1k").unwrap(), 1e3));
        assert!(close(parse_value("1K").unwrap(), 1e3));
        assert!(close(parse_value("1meg").unwrap(), 1e6));
        assert!(close(parse_value("1MEG").unwrap(), 1e6));
        assert!(close(parse_value("1m").unwrap(), 1e-3));
        assert!(close(parse_value("10u").unwrap(), 10e-6));
        assert!(close(parse_value("100n").unwrap(), 100e-9));
        assert!(close(parse_value("10p").unwrap(), 10e-12));
        assert!(close(parse_value("1f").unwrap(), 1e-15));
        assert!(close(parse_value("1g").unwrap(), 1e9));
        assert!(close(parse_value("2t").unwrap(), 2e12));
    }

    #[test]
    fn trailing_units_ignored() {
        assert!(close(parse_value("10uF").unwrap(), 10e-6));
        assert!(close(parse_value("4.7kohm").unwrap(), 4.7e3));
        assert!(close(parse_value("5V").unwrap(), 5.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("abc").is_err());
        assert!(parse_value("--5").is_err());
    }

    #[test]
    fn format_roundtrips_prefix() {
        assert_eq!(format_si(4.7e3, ""), "4.7k");
        assert_eq!(format_si(1e6, "Hz"), "1megHz");
        assert_eq!(format_si(2.2e-6, "F"), "2.2uF");
        assert_eq!(format_si(-3.3, "V"), "-3.3V");
        assert_eq!(format_si(15e-9, "s"), "15ns");
    }

    #[test]
    fn exponent_vs_unit_disambiguation() {
        // 'e' followed by non-digit is a unit, not an exponent.
        assert_eq!(parse_value("1e").unwrap(), 1.0);
    }

    #[test]
    fn rejects_mantissa_less_inputs() {
        for s in [".", "+.", "-.", "+", "-", "+k", "-meg", ".k", "+.u"] {
            assert!(
                matches!(parse_value(s), Err(NetlistError::ParseValue(_))),
                "{s:?} should be ParseValue"
            );
        }
    }

    #[test]
    fn rejects_truncated_exponents() {
        // "1e-"/"1e+" look like truncated exponents, not units; they used to
        // silently parse as 1.0 with suffix "e-".
        for s in ["1e-", "1e+", "2.5E-", "1e-k"] {
            assert!(
                matches!(parse_value(s), Err(NetlistError::ParseValue(_))),
                "{s:?} should be ParseValue"
            );
        }
        // But 'e' followed by a unit letter is still a unit.
        assert_eq!(parse_value("1eV").unwrap(), 1.0);
    }

    #[test]
    fn format_si_nonfinite() {
        assert_eq!(format_si(f64::NAN, "V"), "NaNV");
        assert_eq!(format_si(f64::INFINITY, "Hz"), "infHz");
        assert_eq!(format_si(f64::NEG_INFINITY, ""), "-inf");
    }
}
