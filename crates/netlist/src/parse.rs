//! A small SPICE-deck parser.
//!
//! Supports the element cards needed by the reproduction (`R`, `C`, `L`,
//! `V`, `I`, `E`, `G`, `M`), `.model` cards for NMOS/PMOS and the usual deck
//! conventions: the first line is the title, `*` starts a comment, `+`
//! continues the previous card, `.end` terminates the deck.

use crate::circuit::Circuit;
use crate::element::{MosGeometry, MosPolarity, SourceWaveform};
use crate::error::NetlistError;
use crate::process::{MosLevel, MosModelCard, Technology};
use crate::units::parse_value;

/// Parses a SPICE deck into a [`Circuit`] plus the [`Technology`] assembled
/// from its `.model` cards (cards start from [`Technology::default_1p2um`]
/// defaults, overridden per parameter).
///
/// # Errors
///
/// Returns [`NetlistError::ParseLine`] with a 1-based line number for any
/// malformed card.
///
/// # Example
///
/// ```
/// use ape_netlist::parse_spice;
/// # fn main() -> Result<(), ape_netlist::NetlistError> {
/// let deck = "\
/// * divider
/// V1 in 0 DC 5
/// R1 in out 10k
/// R2 out 0 10k
/// .end
/// ";
/// let (ckt, _tech) = parse_spice(deck)?;
/// assert_eq!(ckt.elements().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_spice(deck: &str) -> Result<(Circuit, Technology), NetlistError> {
    // Join continuation lines first, remembering original line numbers.
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in deck.lines().enumerate() {
        let line = raw.trim_end();
        if let Some(rest) = line.strip_prefix('+') {
            if let Some(last) = cards.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest.trim());
                continue;
            }
        }
        cards.push((idx + 1, line.to_string()));
    }

    let title = cards
        .first()
        .map(|(_, l)| l.trim_start_matches('*').trim().to_string())
        .unwrap_or_default();
    let mut ckt = Circuit::new(if title.is_empty() { "untitled" } else { &title });
    let mut tech = Technology::new("from-deck", 5.0, 0.0, 1.2e-6, 1.8e-6);
    let mut saw_model = false;

    for (lineno, card) in cards.iter().skip(1) {
        let line = card.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        // Subcircuit definitions are not supported by this flat parser;
        // silently skipping `.subckt` would drop elements on the floor (and
        // an unclosed `.subckt` would previously terminate the deck via the
        // `.end` prefix match on `.ends`).
        if lower.starts_with(".subckt") || lower.starts_with(".ends") {
            return Err(NetlistError::ParseLine {
                line: *lineno,
                message: "subcircuit definitions (.subckt/.ends) are not supported; \
                          flatten the deck first"
                    .to_string(),
            });
        }
        if lower.starts_with(".end") {
            break;
        }
        if lower.starts_with(".model") {
            parse_model(line, *lineno, &mut tech)?;
            saw_model = true;
            continue;
        }
        if line.starts_with('.') {
            // Other dot-cards (.op, .ac …) are analysis directives; the
            // simulator API drives analyses, so we skip them here.
            continue;
        }
        parse_element(line, *lineno, &mut ckt)?;
    }
    if !saw_model {
        tech = Technology::default_1p2um();
    }
    Ok((ckt, tech))
}

fn err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::ParseLine {
        line,
        message: message.into(),
    }
}

fn parse_model(line: &str, lineno: usize, tech: &mut Technology) -> Result<(), NetlistError> {
    // .model NAME NMOS|PMOS (key=value ...)
    let cleaned = line.replace(['(', ')'], " ");
    let mut tok = cleaned.split_whitespace();
    tok.next(); // .model
    let name = tok
        .next()
        .ok_or_else(|| err(lineno, "missing model name"))?;
    let kind = tok
        .next()
        .ok_or_else(|| err(lineno, "missing model type"))?
        .to_ascii_uppercase();
    let polarity = match kind.as_str() {
        "NMOS" => MosPolarity::Nmos,
        "PMOS" => MosPolarity::Pmos,
        other => return Err(err(lineno, format!("unsupported model type `{other}`"))),
    };
    let mut card = MosModelCard::generic(name, polarity);
    for kv in tok {
        let Some((k, v)) = kv.split_once('=') else {
            continue;
        };
        let key = k.trim().to_ascii_lowercase();
        if key == "level" {
            card.level = match v.trim() {
                "1" => MosLevel::Level1,
                "2" => MosLevel::Level2,
                "3" => MosLevel::Level3,
                "bsim" | "4" => MosLevel::Bsim,
                other => return Err(err(lineno, format!("unsupported level `{other}`"))),
            };
            continue;
        }
        let val = parse_value(v.trim()).map_err(|e| err(lineno, e.to_string()))?;
        match key.as_str() {
            "vto" => card.vto = val,
            "kp" => card.kp = val,
            "gamma" => card.gamma = val,
            "phi" => card.phi = val,
            "lambda" => card.lambda = val,
            "tox" => card.tox = val,
            "u0" => card.u0 = val * 1e-4, // SPICE writes cm²/Vs
            "ld" => card.ld = val,
            "cgso" => card.cgso = val,
            "cgdo" => card.cgdo = val,
            "cgbo" => card.cgbo = val,
            "cj" => card.cj = val,
            "cjsw" => card.cjsw = val,
            "mj" => card.mj = val,
            "mjsw" => card.mjsw = val,
            "pb" => card.pb = val,
            "theta" => card.theta = val,
            "vmax" => card.vmax = val,
            "eta" => card.eta = val,
            "nfs" => card.nfs = val,
            "kappa" => card.kappa = val,
            _ => {} // unknown parameters are ignored, as SPICE does
        }
    }
    tech.insert_model(card);
    Ok(())
}

fn parse_element(line: &str, lineno: usize, ckt: &mut Circuit) -> Result<(), NetlistError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() < 3 {
        return Err(err(lineno, "element card needs a name and nodes"));
    }
    let name = toks[0];
    let first = name
        .chars()
        .next()
        .ok_or_else(|| err(lineno, "empty element name"))?
        .to_ascii_uppercase();
    let map_err = |e: NetlistError| err(lineno, e.to_string());
    match first {
        'R' | 'C' | 'L' => {
            if toks.len() < 4 {
                return Err(err(lineno, "two-terminal card needs 2 nodes and a value"));
            }
            let a = ckt.node(toks[1]);
            let b = ckt.node(toks[2]);
            let v = parse_value(toks[3]).map_err(|e| err(lineno, e.to_string()))?;
            match first {
                'R' => ckt.add_resistor(name, a, b, v).map_err(map_err),
                'C' => ckt.add_capacitor(name, a, b, v).map_err(map_err),
                _ => ckt.add_inductor(name, a, b, v).map_err(map_err),
            }
        }
        'V' | 'I' => {
            let a = ckt.node(toks[1]);
            let b = ckt.node(toks[2]);
            let (dc, ac) = parse_source_values(&toks[3..], lineno)?;
            if first == 'V' {
                ckt.add_vsource(name, a, b, dc, ac, SourceWaveform::Dc)
                    .map_err(map_err)
            } else {
                ckt.add_isource(name, a, b, dc, ac, SourceWaveform::Dc)
                    .map_err(map_err)
            }
        }
        'E' | 'G' => {
            if toks.len() < 6 {
                return Err(err(lineno, "controlled source needs 4 nodes and a gain"));
            }
            let a = ckt.node(toks[1]);
            let b = ckt.node(toks[2]);
            let cp = ckt.node(toks[3]);
            let cn = ckt.node(toks[4]);
            let g = parse_value(toks[5]).map_err(|e| err(lineno, e.to_string()))?;
            if first == 'E' {
                ckt.add_vcvs(name, a, b, cp, cn, g).map_err(map_err)
            } else {
                ckt.add_vccs(name, a, b, cp, cn, g).map_err(map_err)
            }
        }
        'S' => {
            if toks.len() < 6 {
                return Err(err(lineno, "switch needs 4 nodes and parameters"));
            }
            let a = ckt.node(toks[1]);
            let b = ckt.node(toks[2]);
            let cp = ckt.node(toks[3]);
            let cn = ckt.node(toks[4]);
            let mut vt = 2.5;
            let mut ron = 1e3;
            let mut roff = 1e12;
            for kv in &toks[5..] {
                let Some((k, v)) = kv.split_once('=') else {
                    continue;
                };
                let val = parse_value(v).map_err(|e| err(lineno, e.to_string()))?;
                match k.to_ascii_lowercase().as_str() {
                    "vt" => vt = val,
                    "ron" => ron = val,
                    "roff" => roff = val,
                    _ => {}
                }
            }
            ckt.add_switch(name, a, b, cp, cn, vt, ron, roff)
                .map_err(map_err)
        }
        'M' => {
            if toks.len() < 6 {
                return Err(err(lineno, "mosfet needs 4 nodes and a model"));
            }
            let d = ckt.node(toks[1]);
            let g = ckt.node(toks[2]);
            let s = ckt.node(toks[3]);
            let bk = ckt.node(toks[4]);
            let model = toks[5];
            let polarity = if model.to_ascii_uppercase().contains('P') {
                MosPolarity::Pmos
            } else {
                MosPolarity::Nmos
            };
            let mut w = 10e-6;
            let mut l = 2e-6;
            let mut m = 1.0;
            for kv in &toks[6..] {
                let Some((k, v)) = kv.split_once('=') else {
                    continue;
                };
                let val = parse_value(v).map_err(|e| err(lineno, e.to_string()))?;
                match k.to_ascii_uppercase().as_str() {
                    "W" => w = val,
                    "L" => l = val,
                    "M" => m = val,
                    _ => {}
                }
            }
            ckt.add_mosfet(name, d, g, s, bk, polarity, model, MosGeometry { w, l, m })
                .map_err(map_err)
        }
        other => Err(err(lineno, format!("unsupported element prefix `{other}`"))),
    }
}

fn parse_source_values(toks: &[&str], lineno: usize) -> Result<(f64, f64), NetlistError> {
    // Accept "5", "DC 5", "DC 5 AC 1", "AC 1".
    let mut dc = 0.0;
    let mut ac = 0.0;
    let mut i = 0;
    while i < toks.len() {
        match toks[i].to_ascii_uppercase().as_str() {
            "DC" => {
                i += 1;
                if i < toks.len() {
                    dc = parse_value(toks[i]).map_err(|e| err(lineno, e.to_string()))?;
                }
            }
            "AC" => {
                i += 1;
                if i < toks.len() {
                    ac = parse_value(toks[i]).map_err(|e| err(lineno, e.to_string()))?;
                }
            }
            v => {
                dc = parse_value(v).map_err(|e| err(lineno, e.to_string()))?;
            }
        }
        i += 1;
    }
    Ok((dc, ac))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;

    #[test]
    fn parses_divider() {
        let deck = "* t\nV1 in 0 DC 5\nR1 in out 10k\nR2 out 0 10k\n.end\n";
        let (c, _) = parse_spice(deck).unwrap();
        assert_eq!(c.elements().len(), 3);
        assert_eq!(c.title, "t");
        let r1 = c.element("R1").unwrap();
        assert!(matches!(r1.kind, ElementKind::Resistor { ohms } if ohms == 10e3));
    }

    #[test]
    fn parses_source_forms() {
        let deck = "* t\nV1 a 0 5\nV2 b 0 DC 2 AC 1\nI1 a b 10u\nR1 a 0 1\nR2 b 0 1\n";
        let (c, _) = parse_spice(deck).unwrap();
        match &c.element("V2").unwrap().kind {
            ElementKind::VoltageSource { dc, ac_mag, .. } => {
                assert_eq!(*dc, 2.0);
                assert_eq!(*ac_mag, 1.0);
            }
            other => panic!("wrong kind {other:?}"),
        }
        match &c.element("I1").unwrap().kind {
            ElementKind::CurrentSource { dc, .. } => {
                assert!((dc - 10e-6).abs() < 1e-15)
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn parses_mosfet_and_model() {
        let deck = "\
* amp
M1 d g 0 0 CMOSN W=20u L=2u
R1 d vdd 10k
V1 vdd 0 5
V2 g 0 1.5
.model CMOSN NMOS (level=1 vto=0.7 kp=80u lambda=0.05)
.end
";
        let (c, t) = parse_spice(deck).unwrap();
        let m = c.element("M1").unwrap();
        match &m.kind {
            ElementKind::Mosfet {
                polarity, geometry, ..
            } => {
                assert_eq!(*polarity, MosPolarity::Nmos);
                assert!((geometry.w - 20e-6).abs() < 1e-12);
            }
            other => panic!("wrong kind {other:?}"),
        }
        let card = t.model("CMOSN").unwrap();
        assert_eq!(card.vto, 0.7);
        assert!((card.kp - 80e-6).abs() < 1e-12);
        assert!((card.lambda - 0.05).abs() < 1e-12);
    }

    #[test]
    fn continuation_lines_join() {
        let deck = "* t\nR1 a 0\n+ 1k\n";
        let (c, _) = parse_spice(deck).unwrap();
        assert!(matches!(
            c.element("R1").unwrap().kind,
            ElementKind::Resistor { ohms } if ohms == 1e3
        ));
    }

    #[test]
    fn reports_line_numbers() {
        let deck = "* t\nR1 a 0 1k\nQ1 a b c\n";
        let e = parse_spice(deck).unwrap_err();
        match e {
            NetlistError::ParseLine { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn controlled_sources_parse() {
        let deck = "* t\nE1 o 0 a 0 100\nG1 o 0 a 0 1m\nR1 a 0 1\nR2 o 0 1\n";
        let (c, _) = parse_spice(deck).unwrap();
        assert!(
            matches!(c.element("E1").unwrap().kind, ElementKind::Vcvs { gain, .. } if gain == 100.0)
        );
        assert!(
            matches!(c.element("G1").unwrap().kind, ElementKind::Vccs { gm, .. } if gm == 1e-3)
        );
    }

    #[test]
    fn no_model_cards_falls_back_to_default_tech() {
        let deck = "* t\nR1 a 0 1k\n";
        let (_, t) = parse_spice(deck).unwrap();
        assert!(t.nmos().is_some());
    }

    #[test]
    fn roundtrip_deck_reparses() {
        let deck = "\
* roundtrip
V1 in 0 DC 5 AC 1
R1 in out 4.7k
C1 out 0 10p
M1 out in 0 0 CMOSN W=10u L=1.2u M=1
.end
";
        let (c1, t1) = parse_spice(deck).unwrap();
        let printed = c1.to_spice_deck(&t1);
        let (c2, _) = parse_spice(&printed).unwrap();
        assert_eq!(c1.elements().len(), c2.elements().len());
        assert_eq!(c1.num_nodes(), c2.num_nodes());
    }
}
