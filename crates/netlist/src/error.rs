//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing a netlist.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A numeric literal could not be parsed.
    ParseValue(String),
    /// A netlist line could not be parsed; carries line number and message.
    ParseLine {
        /// 1-based line number in the source deck.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An element referenced a node id that was never created.
    UnknownNode {
        /// Name of the offending element.
        element: String,
        /// The dangling node id.
        node: u32,
    },
    /// An element referenced a MOS model name absent from the technology.
    UnknownModel(String),
    /// Two elements share the same name.
    DuplicateElement(String),
    /// An element parameter is out of its physical domain
    /// (e.g. negative resistance or zero channel length).
    InvalidParameter {
        /// Name of the offending element.
        element: String,
        /// Description of the violated constraint.
        message: String,
    },
    /// The circuit failed a structural validity check.
    Invalid(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ParseValue(s) => write!(f, "invalid numeric literal `{s}`"),
            NetlistError::ParseLine { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetlistError::UnknownNode { element, node } => {
                write!(f, "element `{element}` references unknown node {node}")
            }
            NetlistError::UnknownModel(m) => write!(f, "unknown MOS model `{m}`"),
            NetlistError::DuplicateElement(n) => write!(f, "duplicate element name `{n}`"),
            NetlistError::InvalidParameter { element, message } => {
                write!(f, "invalid parameter on `{element}`: {message}")
            }
            NetlistError::Invalid(m) => write!(f, "invalid circuit: {m}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let e = NetlistError::ParseValue("xy".into());
        let msg = e.to_string();
        assert!(msg.starts_with("invalid"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
