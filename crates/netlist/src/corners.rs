//! Process corners: systematic fast/slow shifts of the technology cards.
//!
//! Fabrication spreads move threshold voltages and transconductance
//! together across a wafer; designs are signed off at the worst-case
//! corners. A corner shifts every card's `vto` by ∓50 mV and scales `kp`
//! by ±12 % (fast = lower threshold magnitude, higher mobility).

use crate::process::Technology;
use crate::MosPolarity;

/// The five classic process corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Corner {
    /// Typical NMOS, typical PMOS (the nominal cards).
    #[default]
    Tt,
    /// Fast NMOS, fast PMOS.
    Ff,
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl Corner {
    /// All five corners, typical first.
    pub fn all() -> [Corner; 5] {
        [Corner::Tt, Corner::Ff, Corner::Ss, Corner::Fs, Corner::Sf]
    }

    /// Speed signs `(nmos, pmos)`: `+1` fast, `0` typical, `-1` slow.
    fn signs(self) -> (f64, f64) {
        match self {
            Corner::Tt => (0.0, 0.0),
            Corner::Ff => (1.0, 1.0),
            Corner::Ss => (-1.0, -1.0),
            Corner::Fs => (1.0, -1.0),
            Corner::Sf => (-1.0, 1.0),
        }
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corner::Tt => write!(f, "TT"),
            Corner::Ff => write!(f, "FF"),
            Corner::Ss => write!(f, "SS"),
            Corner::Fs => write!(f, "FS"),
            Corner::Sf => write!(f, "SF"),
        }
    }
}

/// Threshold shift magnitude per corner step, volts.
pub const CORNER_DVTO: f64 = 0.05;
/// Relative transconductance change per corner step.
pub const CORNER_DKP: f64 = 0.12;

impl Technology {
    /// Returns a copy of this technology shifted to `corner`.
    ///
    /// # Example
    ///
    /// ```
    /// use ape_netlist::{Corner, Technology};
    /// let tt = Technology::default_1p2um();
    /// let ss = tt.corner(Corner::Ss);
    /// let (n_tt, n_ss) = (tt.nmos().unwrap(), ss.nmos().unwrap());
    /// assert!(n_ss.vto > n_tt.vto); // slow NMOS: higher threshold
    /// assert!(n_ss.kp < n_tt.kp);   // and less drive
    /// ```
    pub fn corner(&self, corner: Corner) -> Technology {
        let (sn, sp) = corner.signs();
        let mut t = self.clone();
        t.name = format!("{}-{}", self.name, corner);
        let names: Vec<String> = t.models().map(|c| c.name.clone()).collect();
        for name in names {
            // Look up polarity first, then mutate through insert.
            let Some(card) = t.model(&name) else { continue };
            let s = match card.polarity {
                MosPolarity::Nmos => sn,
                MosPolarity::Pmos => sp,
            };
            let mut c = card.clone();
            // Fast: |vto| down, kp up. vto keeps its sign.
            c.vto -= c.vto.signum() * s * CORNER_DVTO;
            c.kp *= 1.0 + s * CORNER_DKP;
            t.insert_model(c);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_corner_is_identity() {
        let tt = Technology::default_1p2um();
        let same = tt.corner(Corner::Tt);
        assert_eq!(tt.nmos().unwrap().vto, same.nmos().unwrap().vto);
        assert_eq!(tt.pmos().unwrap().kp, same.pmos().unwrap().kp);
    }

    #[test]
    fn fast_and_slow_move_opposite() {
        let tt = Technology::default_1p2um();
        let ff = tt.corner(Corner::Ff);
        let ss = tt.corner(Corner::Ss);
        let n = tt.nmos().unwrap();
        assert!(ff.nmos().unwrap().vto < n.vto);
        assert!(ss.nmos().unwrap().vto > n.vto);
        assert!(ff.nmos().unwrap().kp > n.kp);
        assert!(ss.nmos().unwrap().kp < n.kp);
        // PMOS threshold is negative: fast means smaller magnitude.
        let p = tt.pmos().unwrap();
        assert!(ff.pmos().unwrap().vto > p.vto);
        assert!(ss.pmos().unwrap().vto < p.vto);
    }

    #[test]
    fn cross_corners_split_polarity() {
        let tt = Technology::default_1p2um();
        let fs = tt.corner(Corner::Fs);
        assert!(fs.nmos().unwrap().kp > tt.nmos().unwrap().kp);
        assert!(fs.pmos().unwrap().kp < tt.pmos().unwrap().kp);
    }

    #[test]
    fn display_and_all() {
        assert_eq!(Corner::all().len(), 5);
        assert_eq!(Corner::Ff.to_string(), "FF");
        assert_eq!(Corner::default(), Corner::Tt);
    }
}
