//! The [`Circuit`] container and builder API.

use crate::element::{Element, ElementKind, MosGeometry, MosPolarity, SourceWaveform};
use crate::error::NetlistError;
use crate::node::NodeId;
use crate::process::Technology;
use std::collections::BTreeMap;
use std::fmt;

/// A flat circuit: named nodes plus a list of elements.
///
/// Nodes are created through [`Circuit::node`], which interns a name and
/// returns a dense [`NodeId`]. Elements are appended through the `add_*`
/// builder methods, each of which validates its parameters.
///
/// # Example
///
/// ```
/// use ape_netlist::Circuit;
/// # fn main() -> Result<(), ape_netlist::NetlistError> {
/// let mut ckt = Circuit::new("rc");
/// let n1 = ckt.node("in");
/// let n2 = ckt.node("out");
/// ckt.add_vdc("V1", n1, Circuit::GROUND, 1.0);
/// ckt.add_resistor("R1", n1, n2, 1e3)?;
/// ckt.add_capacitor("C1", n2, Circuit::GROUND, 1e-9)?;
/// ckt.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Human-readable circuit title.
    pub title: String,
    node_names: Vec<String>,
    name_to_node: BTreeMap<String, NodeId>,
    elements: Vec<Element>,
}

/// Summary statistics of a circuit, used in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Number of nodes including ground.
    pub nodes: usize,
    /// Total element count.
    pub elements: usize,
    /// Number of MOSFET instances.
    pub mosfets: usize,
    /// Number of independent sources.
    pub sources: usize,
}

impl Circuit {
    /// The ground node, shared by all circuits.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit containing only the ground node.
    pub fn new(title: &str) -> Self {
        Circuit {
            title: title.to_string(),
            node_names: vec!["0".to_string()],
            name_to_node: BTreeMap::from([(String::from("0"), NodeId::GROUND)]),
            elements: Vec::new(),
        }
    }

    /// Interns `name` and returns its node id, creating the node if new.
    ///
    /// The names `"0"`, `"gnd"` and `"GND"` all map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return NodeId::GROUND;
        }
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId::new(self.node_names.len() as u32);
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Creates a fresh node with a generated unique name using `prefix`.
    pub fn fresh_node(&mut self, prefix: &str) -> NodeId {
        let mut k = self.node_names.len();
        loop {
            let candidate = format!("{prefix}_{k}");
            if !self.name_to_node.contains_key(&candidate) {
                return self.node(&candidate);
            }
            k += 1;
        }
    }

    /// Looks up a node id by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(NodeId::GROUND);
        }
        self.name_to_node.get(name).copied()
    }

    /// Name of a node id, or `"?"` if `id` does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.node_names
            .get(usize::from(id))
            .map_or("?", String::as_str)
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Finds an element by instance name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Mutable access to an element by instance name.
    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.elements.iter_mut().find(|e| e.name == name)
    }

    /// Removes an element by name, returning it if present.
    pub fn remove_element(&mut self, name: &str) -> Option<Element> {
        let idx = self.elements.iter().position(|e| e.name == name)?;
        Some(self.elements.remove(idx))
    }

    fn push(&mut self, e: Element) -> Result<(), NetlistError> {
        if self.elements.iter().any(|x| x.name == e.name) {
            return Err(NetlistError::DuplicateElement(e.name));
        }
        for n in e.nodes() {
            if usize::from(n) >= self.node_names.len() {
                return Err(NetlistError::UnknownNode {
                    element: e.name,
                    node: n.index(),
                });
            }
        }
        // Self-loops on branch/conductance elements either vanish from the
        // MNA system (R/C/L) or make it singular (V sources, VCVS outputs);
        // current sources and MOS devices keep their freedom (d == s dummies
        // and i(a,a) no-ops are physically meaningful).
        if e.a == e.b
            && matches!(
                e.kind,
                ElementKind::Resistor { .. }
                    | ElementKind::Capacitor { .. }
                    | ElementKind::Inductor { .. }
                    | ElementKind::VoltageSource { .. }
                    | ElementKind::Vcvs { .. }
            )
        {
            return Err(NetlistError::InvalidParameter {
                element: e.name,
                message: "element connects a node to itself (self-loop)".to_string(),
            });
        }
        self.elements.push(e);
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance and duplicate names.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), NetlistError> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(NetlistError::InvalidParameter {
                element: name.to_string(),
                message: format!("resistance must be positive and finite, got {ohms}"),
            });
        }
        self.push(Element {
            name: name.to_string(),
            a,
            b,
            kind: ElementKind::Resistor { ohms },
        })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite capacitance and duplicate names.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<(), NetlistError> {
        if !(farads.is_finite() && farads > 0.0) {
            return Err(NetlistError::InvalidParameter {
                element: name.to_string(),
                message: format!("capacitance must be positive and finite, got {farads}"),
            });
        }
        self.push(Element {
            name: name.to_string(),
            a,
            b,
            kind: ElementKind::Capacitor { farads },
        })
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite inductance and duplicate names.
    pub fn add_inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
    ) -> Result<(), NetlistError> {
        if !(henries.is_finite() && henries > 0.0) {
            return Err(NetlistError::InvalidParameter {
                element: name.to_string(),
                message: format!("inductance must be positive and finite, got {henries}"),
            });
        }
        self.push(Element {
            name: name.to_string(),
            a,
            b,
            kind: ElementKind::Inductor { henries },
        })
    }

    /// Adds a DC voltage source with zero AC magnitude.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names, dangling nodes, or a self-loop
    /// (`pos == neg`, which would make the MNA system singular).
    pub fn add_vdc(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        volts: f64,
    ) -> Result<(), NetlistError> {
        self.add_vsource(name, pos, neg, volts, 0.0, SourceWaveform::Dc)
    }

    /// Adds a voltage source with full control of DC, AC magnitude and waveform.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names or dangling nodes.
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        dc: f64,
        ac_mag: f64,
        waveform: SourceWaveform,
    ) -> Result<(), NetlistError> {
        self.push(Element {
            name: name.to_string(),
            a: pos,
            b: neg,
            kind: ElementKind::VoltageSource {
                dc,
                ac_mag,
                waveform,
            },
        })
    }

    /// Adds a DC current source flowing from `pos` through the source to `neg`.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names or dangling nodes.
    pub fn add_idc(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        amps: f64,
    ) -> Result<(), NetlistError> {
        self.add_isource(name, pos, neg, amps, 0.0, SourceWaveform::Dc)
    }

    /// Adds a current source with full control of DC, AC magnitude and waveform.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names or dangling nodes.
    pub fn add_isource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        dc: f64,
        ac_mag: f64,
        waveform: SourceWaveform,
    ) -> Result<(), NetlistError> {
        self.push(Element {
            name: name.to_string(),
            a: pos,
            b: neg,
            kind: ElementKind::CurrentSource {
                dc,
                ac_mag,
                waveform,
            },
        })
    }

    /// Adds a voltage-controlled voltage source `v(a,b) = gain · v(cp,cn)`.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names or dangling nodes.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<(), NetlistError> {
        self.push(Element {
            name: name.to_string(),
            a,
            b,
            kind: ElementKind::Vcvs { gain, cp, cn },
        })
    }

    /// Adds a voltage-controlled current source `i(a→b) = gm · v(cp,cn)`.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names or dangling nodes.
    pub fn add_vccs(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<(), NetlistError> {
        self.push(Element {
            name: name.to_string(),
            a,
            b,
            kind: ElementKind::Vccs { gm, cp, cn },
        })
    }

    /// Adds a MOSFET. Terminal order matches SPICE: drain, gate, source, bulk.
    ///
    /// # Errors
    ///
    /// Rejects non-positive W or L and duplicate names.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        bulk: NodeId,
        polarity: MosPolarity,
        model: &str,
        geometry: MosGeometry,
    ) -> Result<(), NetlistError> {
        if !(geometry.w.is_finite()
            && geometry.w > 0.0
            && geometry.l.is_finite()
            && geometry.l > 0.0)
        {
            return Err(NetlistError::InvalidParameter {
                element: name.to_string(),
                message: format!(
                    "W and L must be positive, got W={} L={}",
                    geometry.w, geometry.l
                ),
            });
        }
        if !(geometry.m.is_finite() && geometry.m >= 1.0) {
            return Err(NetlistError::InvalidParameter {
                element: name.to_string(),
                message: format!("multiplicity must be >= 1, got {}", geometry.m),
            });
        }
        self.push(Element {
            name: name.to_string(),
            a: drain,
            b: gate,
            kind: ElementKind::Mosfet {
                polarity,
                model: model.to_string(),
                geometry,
                source,
                bulk,
            },
        })
    }

    /// Adds a voltage-controlled switch between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects `ron >= roff` or non-positive resistances.
    #[allow(clippy::too_many_arguments)]
    pub fn add_switch(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        cp: NodeId,
        cn: NodeId,
        vt: f64,
        ron: f64,
        roff: f64,
    ) -> Result<(), NetlistError> {
        if !(ron > 0.0 && roff > ron) {
            return Err(NetlistError::InvalidParameter {
                element: name.to_string(),
                message: format!("need 0 < ron < roff, got ron={ron} roff={roff}"),
            });
        }
        self.push(Element {
            name: name.to_string(),
            a,
            b,
            kind: ElementKind::Switch {
                cp,
                cn,
                vt,
                ron,
                roff,
            },
        })
    }

    /// Merges every element and node of `other` into `self`, prefixing
    /// element names and non-ground node names with `prefix` (hierarchical
    /// subcircuit flattening). `port_map` maps node names of `other` onto
    /// existing nodes of `self`.
    ///
    /// # Errors
    ///
    /// Returns an error if a prefixed element name collides.
    pub fn instantiate(
        &mut self,
        prefix: &str,
        other: &Circuit,
        port_map: &[(&str, NodeId)],
    ) -> Result<(), NetlistError> {
        let mut translate: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        translate.insert(NodeId::GROUND, NodeId::GROUND);
        for (port, outer) in port_map {
            if let Some(inner) = other.find_node(port) {
                translate.insert(inner, *outer);
            }
        }
        for idx in 1..other.num_nodes() {
            let inner = NodeId::new(idx as u32);
            translate.entry(inner).or_insert_with(|| {
                let name = format!("{prefix}.{}", other.node_name(inner));
                // Inline Circuit::node to placate the borrow checker.
                if let Some(&id) = self.name_to_node.get(&name) {
                    id
                } else {
                    let id = NodeId::new(self.node_names.len() as u32);
                    self.node_names.push(name.clone());
                    self.name_to_node.insert(name, id);
                    id
                }
            });
        }
        for e in other.elements() {
            let mut ne = e.clone();
            ne.name = format!("{prefix}.{}", e.name);
            ne.a = translate[&e.a];
            ne.b = translate[&e.b];
            match &mut ne.kind {
                ElementKind::Vcvs { cp, cn, .. }
                | ElementKind::Vccs { cp, cn, .. }
                | ElementKind::Switch { cp, cn, .. } => {
                    *cp = translate[cp];
                    *cn = translate[cn];
                }
                ElementKind::Mosfet { source, bulk, .. } => {
                    *source = translate[source];
                    *bulk = translate[bulk];
                }
                _ => {}
            }
            self.push(ne)?;
        }
        Ok(())
    }

    /// Structural validity check: at least one element, every non-ground node
    /// attached to at least one element, and (to avoid singular systems)
    /// every node needs a DC path of at least one connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] describing the first problem found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.elements.is_empty() {
            return Err(NetlistError::Invalid("circuit has no elements".into()));
        }
        let mut degree = vec![0usize; self.num_nodes()];
        for e in &self.elements {
            for n in e.nodes() {
                degree[usize::from(n)] += 1;
            }
        }
        for (idx, d) in degree.iter().enumerate().skip(1) {
            if *d == 0 {
                return Err(NetlistError::Invalid(format!(
                    "node `{}` is not connected to any element",
                    self.node_names[idx]
                )));
            }
        }
        Ok(())
    }

    /// Summary statistics.
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats {
            nodes: self.num_nodes(),
            elements: self.elements.len(),
            ..CircuitStats::default()
        };
        for e in &self.elements {
            match e.kind {
                ElementKind::Mosfet { .. } => s.mosfets += 1,
                ElementKind::VoltageSource { .. } | ElementKind::CurrentSource { .. } => {
                    s.sources += 1
                }
                _ => {}
            }
        }
        s
    }

    /// Total MOS gate area of the circuit in square metres.
    pub fn total_gate_area(&self) -> f64 {
        self.elements
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::Mosfet { geometry, .. } => Some(geometry.gate_area()),
                _ => None,
            })
            .sum()
    }

    /// Renders the circuit as a SPICE deck, including the technology's
    /// `.model` cards.
    ///
    /// Hierarchical element names (e.g. `X1.MB1` from subcircuit flattening)
    /// are prefixed with the SPICE type letter so the deck re-parses:
    /// `MX1.MB1`, `IX1.IB`, and so on.
    pub fn to_spice_deck(&self, tech: &Technology) -> String {
        let type_letter = |kind: &ElementKind| match kind {
            ElementKind::Resistor { .. } => 'R',
            ElementKind::Capacitor { .. } => 'C',
            ElementKind::Inductor { .. } => 'L',
            ElementKind::VoltageSource { .. } => 'V',
            ElementKind::CurrentSource { .. } => 'I',
            ElementKind::Vcvs { .. } => 'E',
            ElementKind::Vccs { .. } => 'G',
            ElementKind::Mosfet { .. } => 'M',
            ElementKind::Switch { .. } => 'S',
            #[allow(unreachable_patterns)] // the enum is non_exhaustive
            _ => 'X',
        };
        let deck_name = |e: &Element| {
            let want = type_letter(&e.kind);
            if e.name
                .chars()
                .next()
                .map(|c| c.eq_ignore_ascii_case(&want))
                .unwrap_or(false)
            {
                e.name.clone()
            } else {
                format!("{want}{}", e.name)
            }
        };
        let mut out = String::new();
        out.push_str(&format!("* {}\n", self.title));
        for e in &self.elements {
            let an = self.node_name(e.a);
            let bn = self.node_name(e.b);
            let ename = deck_name(e);
            let line = match &e.kind {
                ElementKind::Resistor { ohms } => format!("{} {} {} {:.6e}", ename, an, bn, ohms),
                ElementKind::Capacitor { farads } => {
                    format!("{} {} {} {:.6e}", ename, an, bn, farads)
                }
                ElementKind::Inductor { henries } => {
                    format!("{} {} {} {:.6e}", ename, an, bn, henries)
                }
                ElementKind::VoltageSource { dc, ac_mag, .. } => {
                    format!("{} {} {} DC {:.6e} AC {:.3e}", ename, an, bn, dc, ac_mag)
                }
                ElementKind::CurrentSource { dc, ac_mag, .. } => {
                    format!("{} {} {} DC {:.6e} AC {:.3e}", ename, an, bn, dc, ac_mag)
                }
                ElementKind::Vcvs { gain, cp, cn } => format!(
                    "{} {} {} {} {} {:.6e}",
                    ename,
                    an,
                    bn,
                    self.node_name(*cp),
                    self.node_name(*cn),
                    gain
                ),
                ElementKind::Vccs { gm, cp, cn } => format!(
                    "{} {} {} {} {} {:.6e}",
                    ename,
                    an,
                    bn,
                    self.node_name(*cp),
                    self.node_name(*cn),
                    gm
                ),
                ElementKind::Mosfet {
                    model,
                    geometry,
                    source,
                    bulk,
                    ..
                } => format!(
                    "{} {} {} {} {} {} W={:.9e} L={:.9e} M={}",
                    ename,
                    an,
                    bn,
                    self.node_name(*source),
                    self.node_name(*bulk),
                    model,
                    geometry.w,
                    geometry.l,
                    geometry.m
                ),
                ElementKind::Switch {
                    cp,
                    cn,
                    vt,
                    ron,
                    roff,
                } => format!(
                    "{} {} {} {} {} SW vt={:.3} ron={:.3e} roff={:.3e}",
                    ename,
                    an,
                    bn,
                    self.node_name(*cp),
                    self.node_name(*cn),
                    vt,
                    ron,
                    roff
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        for card in tech.models() {
            out.push_str(&card.to_spice());
            out.push('\n');
        }
        out.push_str(".end\n");
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "{} ({} nodes, {} elements, {} mosfets)",
            self.title, s.nodes, s.elements, s.mosfets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> Circuit {
        let mut c = Circuit::new("rc");
        let a = c.node("in");
        let b = c.node("out");
        c.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        c
    }

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new("t");
        let a = c.node("x");
        let a2 = c.node("x");
        assert_eq!(a, a2);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("0"), Circuit::GROUND);
    }

    #[test]
    fn fresh_node_never_collides() {
        let mut c = Circuit::new("t");
        c.node("n_1");
        let f = c.fresh_node("n");
        assert_ne!(c.node_name(f), "n_1");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = rc();
        let a = c.node("in");
        let err = c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateElement("R1".into()));
    }

    #[test]
    fn negative_resistance_rejected() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        assert!(c.add_resistor("R1", a, Circuit::GROUND, -5.0).is_err());
        assert!(c.add_resistor("R2", a, Circuit::GROUND, f64::NAN).is_err());
        assert!(c.add_capacitor("C1", a, Circuit::GROUND, 0.0).is_err());
    }

    #[test]
    fn validate_catches_dangling_node() {
        let mut c = rc();
        c.node("orphan");
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("orphan"));
    }

    #[test]
    fn validate_ok_on_good_circuit() {
        assert!(rc().validate().is_ok());
    }

    #[test]
    fn stats_counts() {
        let mut c = rc();
        let g = c.node("g");
        c.add_mosfet(
            "M1",
            c.find_node("out").unwrap(),
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(10e-6, 2e-6),
        )
        .unwrap();
        let s = c.stats();
        assert_eq!(s.mosfets, 1);
        assert_eq!(s.sources, 1);
        assert_eq!(s.elements, 4);
    }

    #[test]
    fn gate_area_sums_mosfets() {
        let mut c = Circuit::new("t");
        let d = c.node("d");
        let g = c.node("g");
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(10e-6, 2e-6),
        )
        .unwrap();
        c.add_mosfet(
            "M2",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Pmos,
            "CMOSP",
            MosGeometry::new(30e-6, 2e-6),
        )
        .unwrap();
        assert!((c.total_gate_area() - 80e-12).abs() < 1e-24);
    }

    #[test]
    fn instantiate_flattens_with_prefix() {
        let mut inner = Circuit::new("cell");
        let i = inner.node("in");
        let o = inner.node("out");
        inner.add_resistor("R1", i, o, 100.0).unwrap();
        inner
            .add_capacitor("C1", o, Circuit::GROUND, 1e-12)
            .unwrap();

        let mut top = Circuit::new("top");
        let a = top.node("a");
        let b = top.node("b");
        top.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
        top.instantiate("X1", &inner, &[("in", a), ("out", b)])
            .unwrap();
        assert!(top.element("X1.R1").is_some());
        assert!(top.element("X1.C1").is_some());
        // R1 of the instance connects a-b through the port map.
        let r = top.element("X1.R1").unwrap();
        assert_eq!(r.a, a);
        assert_eq!(r.b, b);
        assert!(top.validate().is_ok());
    }

    #[test]
    fn instantiate_creates_internal_nodes() {
        let mut inner = Circuit::new("cell");
        let i = inner.node("in");
        let mid = inner.node("mid");
        inner.add_resistor("R1", i, mid, 1.0).unwrap();
        inner.add_resistor("R2", mid, Circuit::GROUND, 1.0).unwrap();

        let mut top = Circuit::new("top");
        let a = top.node("a");
        top.add_vdc("V", a, Circuit::GROUND, 1.0).unwrap();
        top.instantiate("X", &inner, &[("in", a)]).unwrap();
        assert!(top.find_node("X.mid").is_some());
    }

    #[test]
    fn spice_deck_contains_everything() {
        let deck = rc().to_spice_deck(&Technology::default_1p2um());
        assert!(deck.contains("* rc"));
        assert!(deck.contains("R1 in out"));
        assert!(deck.contains(".model CMOSN"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn remove_element_works() {
        let mut c = rc();
        assert!(c.remove_element("R1").is_some());
        assert!(c.element("R1").is_none());
        assert!(c.remove_element("R1").is_none());
    }
}
