//! Node identifiers.

use std::fmt;

/// Identifier of a circuit node.
///
/// Node `0` is always the ground/reference node. Identifiers are dense:
/// a circuit with `n` nodes uses ids `0..n`, which lets the simulator map a
/// node directly to a matrix row (`id - 1` for non-ground nodes).
///
/// # Example
///
/// ```
/// use ape_netlist::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert!(!n.is_ground());
/// assert!(NodeId::GROUND.is_ground());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// The ground (reference) node, always id `0`.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates a node id from a raw index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Raw dense index of this node (`0` is ground).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Row of this node in a reduced MNA matrix, or `None` for ground.
    ///
    /// Non-ground node `k` occupies row `k - 1` because ground is eliminated.
    pub fn matrix_row(self) -> Option<usize> {
        if self.is_ground() {
            None
        } else {
            Some(self.0 as usize - 1)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(n: NodeId) -> usize {
        n.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_zero() {
        assert_eq!(NodeId::GROUND.index(), 0);
        assert!(NodeId::GROUND.is_ground());
        assert_eq!(NodeId::GROUND.matrix_row(), None);
    }

    #[test]
    fn matrix_row_offsets_by_one() {
        assert_eq!(NodeId::new(1).matrix_row(), Some(0));
        assert_eq!(NodeId::new(7).matrix_row(), Some(6));
    }

    #[test]
    fn display_is_index() {
        assert_eq!(NodeId::new(42).to_string(), "42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::GROUND);
    }
}
