//! Fabrication-process description: MOS model cards and technology bundles.
//!
//! APE ties every sizing decision to the fabrication process (paper §4.1:
//! "the sizing process is tied to the fabrication process parameters"). A
//! [`Technology`] bundles one NMOS and one PMOS [`MosModelCard`] plus the
//! supply voltage and layout minima.

use crate::element::MosPolarity;
use std::collections::BTreeMap;
use std::fmt;

/// Which SPICE MOS model equations a card requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MosLevel {
    /// Level 1 — Shichman-Hodges square law.
    #[default]
    Level1,
    /// Level 2 — analytic model with mobility degradation and subthreshold.
    Level2,
    /// Level 3 — semi-empirical short-channel model.
    Level3,
    /// Simplified BSIM-style model (velocity saturation + DIBL).
    Bsim,
}

impl fmt::Display for MosLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosLevel::Level1 => write!(f, "level=1"),
            MosLevel::Level2 => write!(f, "level=2"),
            MosLevel::Level3 => write!(f, "level=3"),
            MosLevel::Bsim => write!(f, "level=bsim"),
        }
    }
}

/// A SPICE-style MOS model card.
///
/// All values are SI. `kp` is the process transconductance `µ Cox`, the
/// quantity that appears in the paper's equation (2): `gm = sqrt(4 KP (W/L) |Ids| / 2)`
/// (with the factor conventions of the square law `Ids = KP/2 (W/L) Vov²`).
#[derive(Debug, Clone, PartialEq)]
pub struct MosModelCard {
    /// Model name as referenced by MOSFET instances, e.g. `"CMOSN"`.
    pub name: String,
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Equation set to use.
    pub level: MosLevel,
    /// Zero-bias threshold voltage, volts (negative for PMOS).
    pub vto: f64,
    /// Process transconductance `µ₀ Cox`, A/V².
    pub kp: f64,
    /// Body-effect coefficient, √V.
    pub gamma: f64,
    /// Surface potential `2φ_F`, volts.
    pub phi: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Gate-oxide thickness, metres.
    pub tox: f64,
    /// Low-field mobility, m²/(V·s).
    pub u0: f64,
    /// Lateral diffusion, metres (reduces effective L by `2·ld`).
    pub ld: f64,
    /// Gate-source overlap capacitance, F/m of width.
    pub cgso: f64,
    /// Gate-drain overlap capacitance, F/m of width.
    pub cgdo: f64,
    /// Gate-bulk overlap capacitance, F/m of length.
    pub cgbo: f64,
    /// Zero-bias bulk junction capacitance, F/m².
    pub cj: f64,
    /// Zero-bias sidewall junction capacitance, F/m.
    pub cjsw: f64,
    /// Bulk junction grading coefficient.
    pub mj: f64,
    /// Sidewall grading coefficient.
    pub mjsw: f64,
    /// Bulk junction potential, volts.
    pub pb: f64,
    /// Mobility-degradation coefficient θ (Level 3 / BSIM), 1/V.
    pub theta: f64,
    /// Maximum carrier drift velocity, m/s (0 disables velocity saturation).
    pub vmax: f64,
    /// Static-feedback (DIBL) coefficient η (Level 3 / BSIM).
    pub eta: f64,
    /// Subthreshold swing ideality factor (Level 2+).
    pub nfs: f64,
    /// Saturation-region empirical factor κ (Level 3).
    pub kappa: f64,
}

impl MosModelCard {
    /// Gate-oxide capacitance per unit area `ε_ox / tox`, F/m².
    pub fn cox(&self) -> f64 {
        const EPS_OX: f64 = 3.9 * 8.854_187_812_8e-12;
        EPS_OX / self.tox
    }

    /// Effective channel length for a drawn length `l` (metres).
    pub fn leff(&self, l: f64) -> f64 {
        (l - 2.0 * self.ld).max(0.05e-6)
    }

    /// Builds a generic card with sensible defaults for the given polarity,
    /// to be customised field-by-field.
    pub fn generic(name: &str, polarity: MosPolarity) -> Self {
        let sign = polarity.sign();
        MosModelCard {
            name: name.to_string(),
            polarity,
            level: MosLevel::Level1,
            vto: sign * 0.75,
            kp: if polarity == MosPolarity::Nmos {
                73e-6
            } else {
                24e-6
            },
            gamma: 0.45,
            phi: 0.7,
            lambda: 0.04,
            tox: 21.2e-9,
            u0: if polarity == MosPolarity::Nmos {
                0.045
            } else {
                0.015
            },
            ld: 0.15e-6,
            cgso: 2.2e-10,
            cgdo: 2.2e-10,
            cgbo: 1.0e-10,
            cj: 3.0e-4,
            cjsw: 3.0e-10,
            mj: 0.5,
            mjsw: 0.33,
            pb: 0.8,
            theta: 0.0,
            vmax: 0.0,
            eta: 0.0,
            nfs: 0.0,
            kappa: 0.2,
        }
    }

    /// Renders the card as a SPICE `.model` line.
    pub fn to_spice(&self) -> String {
        format!(
            ".model {} {} ({} vto={:.6} kp={:.6e} gamma={:.4} phi={:.4} lambda={:.6} tox={:.4e} u0={:.4e} ld={:.4e} cgso={:.4e} cgdo={:.4e} cj={:.4e} cjsw={:.4e})",
            self.name,
            self.polarity,
            self.level,
            self.vto,
            self.kp,
            self.gamma,
            self.phi,
            self.lambda,
            self.tox,
            self.u0 * 1e4, // SPICE u0 convention: cm^2/(V s)
            self.ld,
            self.cgso,
            self.cgdo,
            self.cj,
            self.cjsw,
        )
    }
}

/// A complete fabrication technology: model cards plus global constants.
///
/// # Example
///
/// ```
/// use ape_netlist::{Technology, MosPolarity};
/// let tech = Technology::default_1p2um();
/// let nmos = tech.model("CMOSN").expect("nmos card");
/// assert_eq!(nmos.polarity, MosPolarity::Nmos);
/// assert!(tech.vdd > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Technology name, e.g. `"generic-1.2um"`.
    pub name: String,
    /// Positive supply rail, volts.
    pub vdd: f64,
    /// Negative supply rail, volts (0 for single-supply).
    pub vss: f64,
    /// Minimum drawn channel length, metres.
    pub lmin: f64,
    /// Minimum drawn channel width, metres.
    pub wmin: f64,
    /// Maximum practical drawn width, metres (layout sanity bound).
    pub wmax: f64,
    cards: BTreeMap<String, MosModelCard>,
}

impl Technology {
    /// Creates an empty technology with the given supplies and layout minima.
    pub fn new(name: &str, vdd: f64, vss: f64, lmin: f64, wmin: f64) -> Self {
        Technology {
            name: name.to_string(),
            vdd,
            vss,
            lmin,
            wmin,
            wmax: 2000e-6,
            cards: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a model card, returning the previous card if any.
    pub fn insert_model(&mut self, card: MosModelCard) -> Option<MosModelCard> {
        self.cards.insert(card.name.clone(), card)
    }

    /// Looks up a model card by name.
    pub fn model(&self, name: &str) -> Option<&MosModelCard> {
        self.cards.get(name)
    }

    /// The NMOS card of a two-card CMOS technology, if present.
    pub fn nmos(&self) -> Option<&MosModelCard> {
        self.cards
            .values()
            .find(|c| c.polarity == MosPolarity::Nmos)
    }

    /// The PMOS card of a two-card CMOS technology, if present.
    pub fn pmos(&self) -> Option<&MosModelCard> {
        self.cards
            .values()
            .find(|c| c.polarity == MosPolarity::Pmos)
    }

    /// Iterates over all model cards in name order.
    pub fn models(&self) -> impl Iterator<Item = &MosModelCard> {
        self.cards.values()
    }

    /// Stable content fingerprint of the technology: every model-card
    /// parameter and technology scalar participates, so two technologies
    /// compare equal under the fingerprint only when they are numerically
    /// identical. Cache layers use this as their technology key.
    ///
    /// The value is stable within a process run (it uses the std hasher with
    /// fixed keys); do not persist it across executions.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        for v in [self.vdd, self.vss, self.lmin, self.wmin, self.wmax] {
            v.to_bits().hash(&mut h);
        }
        for c in self.models() {
            c.name.hash(&mut h);
            c.polarity.hash(&mut h);
            std::mem::discriminant(&c.level).hash(&mut h);
            for v in [
                c.vto, c.kp, c.gamma, c.phi, c.lambda, c.tox, c.u0, c.ld, c.cgso, c.cgdo, c.cgbo,
                c.cj, c.cjsw, c.mj, c.mjsw, c.pb, c.theta, c.vmax, c.eta, c.nfs, c.kappa,
            ] {
                v.to_bits().hash(&mut h);
            }
        }
        h.finish()
    }

    /// Representative mid-1990s 1.2 µm single-well CMOS process, 5 V supply.
    ///
    /// This is the default process for the whole reproduction: the paper's
    /// circuits (op-amps around 0.2–0.5 mW at 1–100 µA bias, gate areas of
    /// 10²–10³ µm²) are natural in this technology node.
    pub fn default_1p2um() -> Self {
        let mut t = Technology::new("generic-1.2um", 5.0, 0.0, 1.2e-6, 1.8e-6);
        let mut n = MosModelCard::generic("CMOSN", MosPolarity::Nmos);
        n.vto = 0.75;
        n.kp = 73e-6;
        n.gamma = 0.45;
        n.lambda = 0.04;
        let mut p = MosModelCard::generic("CMOSP", MosPolarity::Pmos);
        p.vto = -0.85;
        p.kp = 24e-6;
        p.gamma = 0.55;
        p.lambda = 0.05;
        t.insert_model(n);
        t.insert_model(p);
        t
    }

    /// A 0.5 µm CMOS process (3.3 V) for cross-process experiments.
    pub fn default_0p5um() -> Self {
        let mut t = Technology::new("generic-0.5um", 3.3, 0.0, 0.5e-6, 0.9e-6);
        let mut n = MosModelCard::generic("CMOSN", MosPolarity::Nmos);
        n.vto = 0.65;
        n.kp = 115e-6;
        n.tox = 9.5e-9;
        n.lambda = 0.06;
        n.ld = 0.06e-6;
        n.theta = 0.15;
        n.vmax = 1.6e5;
        let mut p = MosModelCard::generic("CMOSP", MosPolarity::Pmos);
        p.vto = -0.9;
        p.kp = 38e-6;
        p.tox = 9.5e-9;
        p.lambda = 0.08;
        p.ld = 0.06e-6;
        p.theta = 0.12;
        p.vmax = 1.0e5;
        t.insert_model(n);
        t.insert_model(p);
        t
    }

    /// Returns a copy of this technology with every card switched to `level`.
    ///
    /// Used by the model-level ablation experiments.
    pub fn with_level(&self, level: MosLevel) -> Self {
        let mut t = self.clone();
        let names: Vec<String> = t.cards.keys().cloned().collect();
        for name in names {
            if let Some(card) = t.cards.get_mut(&name) {
                card.level = level;
                // Levels above 1 need non-zero second-order coefficients to
                // differ from the square law; supply mild defaults if unset.
                if level != MosLevel::Level1 && card.theta == 0.0 {
                    card.theta = 0.06;
                }
                if matches!(level, MosLevel::Level3 | MosLevel::Bsim) && card.vmax == 0.0 {
                    card.vmax = 1.5e5;
                }
                if matches!(level, MosLevel::Level3 | MosLevel::Bsim) && card.eta == 0.0 {
                    card.eta = 0.02;
                }
            }
        }
        t
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::default_1p2um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_process_has_both_polarities() {
        let t = Technology::default_1p2um();
        assert!(t.nmos().is_some());
        assert!(t.pmos().is_some());
        assert_eq!(t.nmos().unwrap().name, "CMOSN");
        assert_eq!(t.pmos().unwrap().name, "CMOSP");
    }

    #[test]
    fn cox_matches_hand_calculation() {
        let n = MosModelCard::generic("N", MosPolarity::Nmos);
        // eps_ox / tox = 3.9 * 8.854e-12 / 21.2e-9 ≈ 1.63e-3 F/m²
        let cox = n.cox();
        assert!((cox - 1.629e-3).abs() / 1.629e-3 < 0.01, "cox = {cox}");
    }

    #[test]
    fn leff_clamps_positive() {
        let n = MosModelCard::generic("N", MosPolarity::Nmos);
        assert!(n.leff(2e-6) < 2e-6);
        assert!(n.leff(0.0) > 0.0);
    }

    #[test]
    fn model_lookup_by_name() {
        let t = Technology::default_1p2um();
        assert!(t.model("CMOSN").is_some());
        assert!(t.model("NOPE").is_none());
        assert_eq!(t.models().count(), 2);
    }

    #[test]
    fn with_level_sets_second_order_params() {
        let t = Technology::default_1p2um().with_level(MosLevel::Level3);
        let n = t.nmos().unwrap();
        assert_eq!(n.level, MosLevel::Level3);
        assert!(n.theta > 0.0);
        assert!(n.vmax > 0.0);
    }

    #[test]
    fn spice_rendering_mentions_key_params() {
        let n = MosModelCard::generic("CMOSN", MosPolarity::Nmos);
        let s = n.to_spice();
        assert!(s.contains(".model CMOSN NMOS"));
        assert!(s.contains("vto="));
        assert!(s.contains("kp="));
    }

    #[test]
    fn pmos_threshold_is_negative() {
        let t = Technology::default_1p2um();
        assert!(t.pmos().unwrap().vto < 0.0);
        assert!(t.nmos().unwrap().vto > 0.0);
    }

    #[test]
    fn fingerprint_distinguishes_numerically_different_technologies() {
        let a = Technology::default_1p2um();
        let b = Technology::default_1p2um();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = Technology::default_1p2um();
        c.vdd = 3.3;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = Technology::default_1p2um();
        let mut card = d.nmos().unwrap().clone();
        card.kp *= 1.0 + 1e-12;
        d.insert_model(card);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
