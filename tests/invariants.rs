// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Cross-crate sampled invariant tests over the reproduction's core
//! properties. Each test sweeps a seeded pseudo-random sample of its input
//! space (deterministic — no external property-testing framework), so a
//! failure message pinpoints the violating inputs.

use ape_repro::anneal::Rng64;
use ape_repro::mos::sizing::{size_for_gm_id, size_for_id_vov, vgs_for_id};
use ape_repro::mos::{evaluate, BiasPoint};
use ape_repro::netlist::{parse_value, Circuit, MosGeometry, Technology};
use ape_repro::spice::linalg::Matrix;
use ape_repro::spice::{dc_operating_point, Complex};

/// Sizing inversion round-trips: size for (gm, id), evaluate the forward
/// model at the returned bias, and the targets come back.
#[test]
fn sizing_roundtrip_gm_id() {
    let tech = Technology::default_1p2um();
    let card = tech.nmos().expect("nmos");
    let mut rng = Rng64::seed_from_u64(101);
    for _ in 0..64 {
        let id = rng.range_f64(0.5, 500.0) * 1e-6;
        let gm = rng.range_f64(5.0, 18.0) * id;
        let l = rng.range_f64(1.2, 10.0) * 1e-6;
        let sized = size_for_gm_id(card, gm, id, l).expect("feasible region");
        let e = evaluate(
            card,
            &sized.geometry,
            BiasPoint {
                vgs: sized.vgs,
                vds: 2.5,
                vsb: 0.0,
            },
        );
        assert!((e.gm - gm).abs() / gm < 1e-3, "gm {} vs {}", e.gm, gm);
        assert!((e.ids - id).abs() / id < 1e-3, "id {} vs {}", e.ids, id);
    }
}

/// Width scales linearly with current at fixed overdrive.
#[test]
fn width_linear_in_current() {
    let tech = Technology::default_1p2um();
    let card = tech.nmos().expect("nmos");
    let mut rng = Rng64::seed_from_u64(102);
    for _ in 0..64 {
        let id = rng.range_f64(1.0, 200.0) * 1e-6;
        let vov = rng.range_f64(0.1, 0.8);
        let a = size_for_id_vov(card, id, vov, 2.4e-6).expect("sizes");
        let b = size_for_id_vov(card, 2.0 * id, vov, 2.4e-6).expect("sizes");
        let ratio = b.geometry.w / a.geometry.w;
        assert!(
            (ratio - 2.0).abs() < 0.02,
            "ratio {ratio} at id {id} vov {vov}"
        );
    }
}

/// The drain current is monotone in vgs (the property bisection relies on).
#[test]
fn ids_monotone_in_vgs() {
    let tech = Technology::default_1p2um();
    let card = tech.nmos().expect("nmos");
    let mut rng = Rng64::seed_from_u64(103);
    for _ in 0..64 {
        let g = MosGeometry::new(
            rng.range_f64(2.0, 100.0) * 1e-6,
            rng.range_f64(1.2, 10.0) * 1e-6,
        );
        let vds = rng.range_f64(0.2, 5.0);
        let v1 = rng.range_f64(0.0, 2.4);
        let dv = rng.range_f64(0.01, 1.0);
        let e1 = evaluate(
            card,
            &g,
            BiasPoint {
                vgs: v1,
                vds,
                vsb: 0.0,
            },
        );
        let e2 = evaluate(
            card,
            &g,
            BiasPoint {
                vgs: v1 + dv,
                vds,
                vsb: 0.0,
            },
        );
        assert!(e2.ids >= e1.ids, "ids dropped at vgs {v1}+{dv}, vds {vds}");
    }
}

/// vgs_for_id inverts the forward model exactly.
#[test]
fn vgs_bisection_inverts() {
    let tech = Technology::default_1p2um();
    let card = tech.nmos().expect("nmos");
    let mut rng = Rng64::seed_from_u64(104);
    for _ in 0..64 {
        let g = MosGeometry::new(rng.range_f64(5.0, 200.0) * 1e-6, 2.4e-6);
        let id = rng.range_f64(1.0, 100.0) * 1e-6;
        if let Ok(vgs) = vgs_for_id(card, &g, id, 2.5, 0.0) {
            let e = evaluate(
                card,
                &g,
                BiasPoint {
                    vgs,
                    vds: 2.5,
                    vsb: 0.0,
                },
            );
            assert!((e.ids - id).abs() / id < 1e-5, "{} vs {id}", e.ids);
        }
    }
}

/// LU solves random diagonally-dominant real systems to small residual.
#[test]
fn lu_residual_small() {
    let mut rng = Rng64::seed_from_u64(105);
    for _ in 0..64 {
        let n = 2 + rng.range_usize(22);
        let mut m: Matrix<f64> = Matrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m[(r, c)] = rng.f64() - 0.5;
            }
            m[(r, r)] += n as f64; // diagonally dominant
        }
        let b: Vec<f64> = (0..n).map(|_| rng.f64() - 0.5).collect();
        let x = m.solve(&b).expect("nonsingular");
        let ax = m.mul_vec(&x);
        let resid = ax
            .iter()
            .zip(&b)
            .map(|(a, bb)| (a - bb).abs())
            .fold(0.0, f64::max);
        assert!(resid < 1e-9, "residual {resid} at n {n}");
    }
}

/// Complex LU solutions scale linearly with the right-hand side.
#[test]
fn complex_solve_is_linear() {
    let mut rng = Rng64::seed_from_u64(106);
    for _ in 0..64 {
        let re = rng.range_f64(-5.0, 5.0);
        let im = rng.range_f64(-5.0, 5.0);
        let scale = rng.range_f64(0.5, 4.0);
        let mut m: Matrix<Complex> = Matrix::zeros(2);
        m[(0, 0)] = Complex::new(2.0 + re.abs(), im);
        m[(0, 1)] = Complex::new(0.3, -0.1);
        m[(1, 0)] = Complex::new(-0.2, 0.4);
        m[(1, 1)] = Complex::new(3.0, -im);
        let b = vec![Complex::new(re, im), Complex::new(1.0, -0.5)];
        let x1 = m.solve(&b).expect("nonsingular");
        let b2: Vec<Complex> = b.iter().map(|v| *v * scale).collect();
        let x2 = m.solve(&b2).expect("nonsingular");
        for (a, bb) in x1.iter().zip(&x2) {
            assert!((*a * scale - *bb).norm() < 1e-9);
        }
    }
}

/// Engineering-notation parsing accepts anything format_si produces.
#[test]
fn si_format_parse_roundtrip() {
    let mut rng = Rng64::seed_from_u64(107);
    for _ in 0..128 {
        let mant = rng.range_f64(1.0, 999.0);
        let exp = rng.range_usize(21) as i32 - 12; // -12..=8
        let v = mant * 10f64.powi(exp);
        let s = ape_repro::netlist::format_si(v, "");
        let parsed = parse_value(&s).expect("parses");
        assert!((parsed - v).abs() / v < 1e-3, "{v} -> {s} -> {parsed}");
    }
}

/// Resistive dividers solve to the analytic value for any positive pair.
#[test]
fn divider_dc_solution() {
    let tech = Technology::default_1p2um();
    let mut rng = Rng64::seed_from_u64(108);
    for _ in 0..32 {
        let r1_k = rng.range_f64(0.1, 1000.0);
        let r2_k = rng.range_f64(0.1, 1000.0);
        let v = rng.range_f64(0.1, 10.0);
        let mut ckt = Circuit::new("div");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vdc("V1", a, Circuit::GROUND, v).unwrap();
        ckt.add_resistor("R1", a, b, r1_k * 1e3).expect("r1");
        ckt.add_resistor("R2", b, Circuit::GROUND, r2_k * 1e3)
            .expect("r2");
        let op = dc_operating_point(&ckt, &tech).expect("solves");
        let expect = v * r2_k / (r1_k + r2_k);
        assert!((op.voltage(b) - expect).abs() < 1e-6 + 1e-6 * expect.abs());
    }
}

/// Annealer results always stay inside their box constraints.
#[test]
fn annealer_respects_bounds() {
    use ape_repro::anneal::{anneal, AnnealOptions, Schedule, VectorRanges};
    let mut rng = Rng64::seed_from_u64(109);
    for seed in 0..32u64 {
        let lo = rng.range_f64(-10.0, 0.0);
        let span = rng.range_f64(0.1, 20.0);
        let ranges = VectorRanges::new(vec![(lo, lo + span); 3]).expect("valid");
        let opts = AnnealOptions {
            schedule: Schedule::Geometric {
                t0: 5.0,
                alpha: 0.85,
                moves_per_temp: 20,
                t_min: 1e-4,
            },
            max_evals: 500,
            seed,
            target_cost: f64::NEG_INFINITY,
        };
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| x * x).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        assert!(ranges.contains(&r.best_state));
    }
}

/// Monotonicity of the estimator: more bias current never reduces the
/// achievable UGF of a gain stage (sampled: design calls are comparatively
/// slow).
#[test]
fn estimator_ugf_monotone_in_current() {
    use ape_repro::ape::basic::{GainStage, GainTopology};
    let tech = Technology::default_1p2um();
    let mut last = 0.0;
    for k in 1..8 {
        let ibias = 20e-6 * k as f64;
        let g =
            GainStage::design(&tech, GainTopology::CmosActive, -20.0, ibias, 1e-12).expect("sizes");
        let ugf = g.perf.ugf_hz.expect("has ugf");
        assert!(
            ugf >= last,
            "ugf {ugf} dropped below {last} at ibias {ibias}"
        );
        last = ugf;
    }
}
