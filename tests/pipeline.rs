// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! End-to-end pipeline tests: the paper's Figure 1 flow from specification
//! through estimation, verification and seeded synthesis.

use ape_repro::ape::basic::MirrorTopology;
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::netlist::{parse_spice, Technology};
use ape_repro::oblx::{design_point_from_ape, synthesize, InitialPoint, SynthesisOptions};
use ape_repro::spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

fn spec() -> OpAmpSpec {
    OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    }
}

#[test]
fn figure1_flow_estimate_verify_synthesize() {
    let tech = Technology::default_1p2um();
    let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);

    // Architecture generation + constraint transformation stand-in:
    // requirements arrive as an OpAmpSpec; APE estimates and sizes.
    let amp = OpAmp::design(&tech, topo, spec()).expect("APE sizes the spec");
    assert!(amp.perf.dc_gain.unwrap() >= 200.0);
    assert!(amp.perf.ugf_hz.unwrap() >= 5e6);

    // Design verification (SPICE step).
    let tb = amp.testbench_open_loop(&tech).expect("testbench");
    let op = dc_operating_point(&tb, &tech).expect("dc");
    let out = tb.find_node("out").expect("out");
    let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(100.0, 1e9, 8).unwrap()).expect("ac");
    let gain_sim = measure::dc_gain(&sweep, out).unwrap();
    let ugf_sim = measure::unity_gain_frequency(&sweep, out).expect("crosses unity");
    assert!(gain_sim >= 200.0, "verified gain {gain_sim}");
    assert!(ugf_sim >= 5e6 * 0.9, "verified UGF {ugf_sim}");

    // Circuit sizing refinement: APE-seeded ASTRX/OBLX-style search.
    let init = InitialPoint::ApeSeeded {
        point: design_point_from_ape(&tech, &amp),
        interval_frac: 0.2,
    };
    let opts = SynthesisOptions {
        max_evals: 200,
        seed: 7,
        ..SynthesisOptions::default()
    };
    let outcome = synthesize(&tech, topo, &spec(), &init, &opts).expect("synthesis runs");
    assert!(
        outcome.meets_spec(),
        "seeded synthesis meets spec: {:?}",
        outcome.audit.map(|a| a.violations)
    );
    // The paper's headline: the seeded search needs a tiny fraction of the
    // blind budget.
    assert!(
        outcome.evals <= 50,
        "seeded search took {} evals",
        outcome.evals
    );
}

#[test]
fn emitted_deck_reparses_and_resimulates() {
    // Figure 3-style netlist emission: the SPICE deck printed by the flow
    // parses back into an equivalent circuit that simulates to the same
    // operating point.
    let tech = Technology::default_1p2um();
    let topo = OpAmpTopology::miller(MirrorTopology::Wilson, true);
    let amp = OpAmp::design(&tech, topo, spec()).expect("sizes");
    let tb = amp.testbench_open_loop(&tech).expect("testbench");
    let deck = tb.to_spice_deck(&tech);
    let (reparsed, tech2) = parse_spice(&deck).expect("deck parses");
    assert_eq!(reparsed.stats().mosfets, tb.stats().mosfets);
    let op1 = dc_operating_point(&tb, &tech).expect("dc original");
    let op2 = dc_operating_point(&reparsed, &tech2).expect("dc reparsed");
    // The open-loop output is offset-sensitive (gain > 2000), so compare
    // robust bias quantities: every MOSFET's drain current.
    for (name, m1) in &op1.mos {
        let deck_name = format!("M{name}");
        let m2 = op2
            .mos
            .get(name)
            .or_else(|| op2.mos.get(&deck_name))
            .unwrap_or_else(|| panic!("device {name} lost in roundtrip"));
        let i1 = m1.eval.ids;
        let i2 = m2.eval.ids;
        assert!(
            (i1 - i2).abs() <= 1e-9 + 0.02 * i1.abs(),
            "{name}: current {i1} vs {i2}"
        );
    }
}

#[test]
fn all_ten_table1_specs_size_through_ape() {
    // The APE front-end must produce a design for every Table 1 row —
    // the paper sized all ten in 0.12 s.
    let tech = Technology::default_1p2um();
    let t0 = std::time::Instant::now();
    for task in ape_bench::specs::table1_opamps() {
        let amp = OpAmp::design(&tech, task.topology, task.spec)
            .unwrap_or_else(|e| panic!("{} fails to size: {e}", task.name));
        assert!(
            amp.perf.dc_gain.unwrap() >= task.spec.gain * 0.9,
            "{}",
            task.name
        );
    }
    // Generous bound (debug builds are slow): well under a second each.
    assert!(t0.elapsed().as_secs_f64() < 10.0);
}
