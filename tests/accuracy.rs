// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Est-vs-sim accuracy gates over the paper's evaluation tables — the
//! reproduction's analogue of "these results show that the models used in
//! the APE are reasonably accurate".

use ape_bench::rows::{table2_rows, table3_row, table5_ape_rows};
use ape_bench::specs::table3_opamps;
use ape_repro::netlist::Technology;

#[test]
fn table2_every_metric_within_50_percent() {
    let tech = Technology::default_1p2um();
    let rows = table2_rows(&tech).expect("table 2 computes");
    assert_eq!(rows.len(), 9, "all nine basic components");
    let mut total = 0.0;
    let mut n = 0;
    for row in &rows {
        for m in &row.metrics {
            assert!(
                m.rel_err() < 0.5,
                "{} / {}: est {} vs sim {}",
                row.name,
                m.name,
                m.est,
                m.sim
            );
            total += m.rel_err();
            n += 1;
        }
    }
    // Mean accuracy matches the paper's narrative: estimates within a few
    // percent of simulation on average.
    assert!((total / n as f64) < 0.10, "mean error {}", total / n as f64);
}

#[test]
fn table3_opamp4_row_tracks_simulation() {
    // OpAmp4 (mirror bias, unbuffered) is the fully-analytic topology; the
    // slow buffered rows are exercised by the table3 binary.
    let tech = Technology::default_1p2um();
    let task = &table3_opamps()[3];
    let row = table3_row(&tech, task).expect("row computes");
    for m in &row.metrics {
        let tol = match m.name {
            "slew" | "cmrr" | "zout" => 1.0,
            "adm" => 0.6,
            _ => 0.5,
        };
        assert!(
            m.rel_err() < tol,
            "{}: est {} vs sim {}",
            m.name,
            m.est,
            m.sim
        );
    }
}

#[test]
#[ignore = "slow: full table 5 module simulations (run with --ignored)"]
fn table5_module_rows_track_simulation() {
    let tech = Technology::default_1p2um();
    let rows = table5_ape_rows(&tech).expect("table 5 computes");
    assert_eq!(rows.len(), 5);
    for row in &rows {
        for m in &row.metrics {
            let tol = match (row.name.as_str(), m.name) {
                (_, "area") => 0.3,
                ("adc", "delay") => 1.0,
                _ => 0.5,
            };
            assert!(
                m.rel_err() < tol,
                "{} / {}: est {} vs sim {}",
                row.name,
                m.name,
                m.est,
                m.sim
            );
        }
    }
}
