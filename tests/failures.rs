// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Failure-injection tests: every level must fail *typed and loud*, never
//! panic, never return garbage silently.

use ape_repro::ape::basic::{DiffPair, DiffTopology, GainStage, GainTopology, MirrorTopology};
use ape_repro::ape::folded::{FoldedCascodeOta, FoldedCascodeSpec};
use ape_repro::ape::module::{FlashAdc, SallenKeyBandPass, SallenKeyLowPass};
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::ape::ApeError;
use ape_repro::netlist::{Circuit, MosGeometry, MosPolarity, NetlistError, Technology};
use ape_repro::spice::{dc_operating_point, SpiceError};

#[test]
fn netlist_rejects_nonphysical_elements() {
    let mut c = Circuit::new("bad");
    let a = c.node("a");
    assert!(matches!(
        c.add_resistor("R1", a, Circuit::GROUND, -1.0),
        Err(NetlistError::InvalidParameter { .. })
    ));
    assert!(matches!(
        c.add_capacitor("C1", a, Circuit::GROUND, f64::INFINITY),
        Err(NetlistError::InvalidParameter { .. })
    ));
    assert!(c
        .add_mosfet(
            "M1",
            a,
            a,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(-1e-6, 1e-6),
        )
        .is_err());
}

#[test]
fn simulator_reports_singular_structures() {
    // Two ideal voltage sources fighting on one node: structurally
    // inconsistent, must be a typed error (or an honest non-convergence),
    // never a bogus solution.
    let tech = Technology::default_1p2um();
    let mut c = Circuit::new("fight");
    let a = c.node("a");
    c.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
    c.add_vdc("V2", a, Circuit::GROUND, 2.0).unwrap();
    c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    let r = dc_operating_point(&c, &tech);
    assert!(
        matches!(
            r,
            Err(SpiceError::SingularMatrix { .. }) | Err(SpiceError::NoConvergence { .. })
        ),
        "got {r:?}"
    );
}

#[test]
fn simulator_rejects_empty_circuits() {
    let tech = Technology::default_1p2um();
    let c = Circuit::new("empty");
    assert!(matches!(
        dc_operating_point(&c, &tech),
        Err(SpiceError::BadCircuit(_))
    ));
}

#[test]
fn estimator_refuses_impossible_gm() {
    // gm beyond the weak-inversion limit at the given current: the
    // estimator must say so, not return a fantasy width.
    let tech = Technology::default_1p2um();
    let r = DiffPair::design(&tech, DiffTopology::MirrorLoad, 500.0, 5e-9, 0.0);
    assert!(matches!(r, Err(ApeError::Infeasible { .. })), "got {r:?}");
    let r = GainStage::design(&tech, GainTopology::NmosLoad, -1000.0, 1e-7, 0.0);
    assert!(r.is_err());
}

#[test]
fn opamp_level_validates_every_field() {
    let tech = Technology::default_1p2um();
    let topo = OpAmpTopology::miller(MirrorTopology::Simple, true);
    let good = OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: Some(10e3),
        cl: 10e-12,
    };
    for (mutate, field) in [
        (OpAmpSpec { gain: 0.0, ..good }, "gain"),
        (
            OpAmpSpec {
                ugf_hz: -1.0,
                ..good
            },
            "ugf",
        ),
        (
            OpAmpSpec {
                cl: f64::NAN,
                ..good
            },
            "cl",
        ),
        (OpAmpSpec { ibias: 0.0, ..good }, "ibias"),
        (
            OpAmpSpec {
                zout_ohm: Some(-1.0),
                ..good
            },
            "zout",
        ),
    ] {
        assert!(
            OpAmp::design(&tech, topo, mutate).is_err(),
            "field {field} accepted"
        );
    }
    assert!(OpAmp::design(&tech, topo, good).is_ok());
}

#[test]
fn module_level_validates_orders_and_ranges() {
    let tech = Technology::default_1p2um();
    assert!(SallenKeyLowPass::design(&tech, 1e3, 3, 1e-12).is_err()); // odd order
    assert!(SallenKeyLowPass::design(&tech, 0.0, 4, 1e-12).is_err());
    assert!(SallenKeyBandPass::design(&tech, 1e3, 0.2, 1e-12).is_err()); // K < 1
    assert!(FlashAdc::design(&tech, 0, 1e-6).is_err());
    assert!(FlashAdc::design(&tech, 7, 1e-6).is_err());
    assert!(FoldedCascodeOta::design(
        &tech,
        FoldedCascodeSpec {
            gain: 2000.0,
            ugf_hz: 10e6,
            ibias: 10e-6,
            cl: -1.0
        }
    )
    .is_err());
}

#[test]
fn missing_model_cards_surface_by_name() {
    // A technology with no PMOS card: every level that needs one says so.
    let mut tech = Technology::new("nmos-only", 5.0, 0.0, 1.2e-6, 1.8e-6);
    tech.insert_model(ape_repro::netlist::MosModelCard::generic(
        "CMOSN",
        MosPolarity::Nmos,
    ));
    let r = DiffPair::design(&tech, DiffTopology::MirrorLoad, 100.0, 1e-6, 0.0);
    assert!(
        matches!(r, Err(ApeError::MissingModel("PMOS"))),
        "got {r:?}"
    );
}

#[test]
fn synthesis_survives_hostile_seeds() {
    // A seeded synthesis around a nonsensical point must not panic; the
    // audit reports the damage.
    use ape_repro::oblx::{synthesize, DesignPoint, InitialPoint, SynthesisOptions};
    let tech = Technology::default_1p2um();
    let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
    let spec = OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    };
    let hostile = DesignPoint {
        values: vec![
            1.8e-6, 60e-6, 1.8e-6, 1.8e-6, 60e-6, 800e-6, 1.8e-6, 0.3e-12,
        ],
    };
    let init = InitialPoint::ApeSeeded {
        point: hostile,
        interval_frac: 0.2,
    };
    let opts = SynthesisOptions {
        max_evals: 40,
        seed: 1,
        ..SynthesisOptions::default()
    };
    let out = synthesize(&tech, topo, &spec, &init, &opts).expect("runs without panicking");
    // Whatever happened, the outcome is coherent: either an audit exists or
    // the design is declared dead.
    if let Ok(audit) = &out.audit {
        assert!(audit.meets_spec() || !audit.violations.is_empty());
    }
}

/// Table-driven hostile decks: each must come back as a typed parse error
/// (or, for the semantic rows, parse and then fail cleanly downstream) —
/// never a panic, never a silently-truncated circuit.
#[test]
fn hostile_decks_fail_typed() {
    use ape_repro::netlist::parse_spice;
    let cases: &[(&str, &str)] = &[
        (
            "unclosed subckt",
            "* sub\n.subckt inner a b\nR1 a b 1k\nV1 a 0 DC 1\n.end\n",
        ),
        ("stray ends", "* sub\nR1 a 0 1k\n.ends\n.end\n"),
        (
            "self-loop resistor",
            "* loop\nV1 in 0 DC 1\nR1 in in 1k\n.end\n",
        ),
        (
            "self-loop capacitor",
            "* loop\nV1 in 0 DC 1\nC1 n1 n1 1p\n.end\n",
        ),
        (
            "zero-value resistor",
            "* zero\nV1 in 0 DC 1\nR1 in 0 0\n.end\n",
        ),
        (
            "zero-value capacitor",
            "* zero\nV1 in 0 DC 1\nC1 in 0 0\n.end\n",
        ),
        (
            "duplicate element names",
            "* dup\nV1 in 0 DC 1\nR1 in 0 1k\nR1 in 0 2k\n.end\n",
        ),
        (
            "mantissa-less value",
            "* dot\nV1 in 0 DC 1\nR1 in 0 .\n.end\n",
        ),
        (
            "truncated exponent",
            "* e-\nV1 in 0 DC 1\nR1 in 0 1e-\n.end\n",
        ),
        (
            "negative resistor",
            "* neg\nV1 in 0 DC 1\nR1 in 0 -5k\n.end\n",
        ),
    ];
    for (what, deck) in cases {
        let r = parse_spice(deck);
        let err = match r {
            Err(e) => e,
            Ok(_) => panic!("{what}: hostile deck accepted"),
        };
        assert!(
            !err.to_string().trim().is_empty(),
            "{what}: error message is empty"
        );
    }
}

/// The estimator rejects an output node that is not part of the circuit
/// instead of indexing out of bounds.
#[test]
fn netest_rejects_foreign_output_node() {
    use ape_repro::ape::netest::estimate_netlist;
    use ape_repro::netlist::{parse_spice, NodeId};
    let (ckt, tech) = parse_spice(
        "* amp\nV1 in 0 DC 1.2 AC 1\nVDD vdd 0 DC 5\nRD vdd out 50k\n\
         M1 out in 0 0 CMOSN W=10u L=2.4u\n.end\n",
    )
    .unwrap();
    let r = estimate_netlist(&ckt, &tech, NodeId::new(999));
    assert!(
        matches!(
            r,
            Err(ApeError::BadSpec {
                param: "output",
                ..
            })
        ),
        "got {r:?}"
    );
}
