// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Cross-process tests: the whole flow on the 0.5 µm / 3.3 V technology
//! (Level 3 short-channel models), checking that nothing in the estimator
//! or simulator is hard-wired to the default 1.2 µm process.

use ape_repro::ape::basic::{DiffPair, DiffTopology, MirrorTopology};
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::netlist::Technology;
use ape_repro::spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

fn tech_05() -> Technology {
    Technology::default_0p5um()
}

#[test]
fn diff_pair_designs_and_verifies_at_0p5um() {
    let tech = tech_05();
    let pair = DiffPair::design(&tech, DiffTopology::MirrorLoad, 300.0, 2e-6, 1e-12)
        .expect("sizes on 0.5um");
    let tb = pair.testbench(&tech).unwrap();
    let op = dc_operating_point(&tb, &tech).expect("dc");
    let out = tb.find_node("out").expect("out");
    let sweep = ac_sweep(&tb, &tech, &op, &[10.0]).expect("ac");
    let a_sim = measure::dc_gain(&sweep, out).unwrap();
    let a_est = pair.perf.dc_gain.unwrap();
    assert!(
        (a_sim - a_est).abs() / a_est < 0.6,
        "0.5um pair: sim {a_sim} vs est {a_est}"
    );
}

#[test]
fn opamp_designs_and_meets_spec_at_0p5um() {
    let tech = tech_05();
    let spec = OpAmpSpec {
        gain: 150.0,
        ugf_hz: 10e6,
        area_max_m2: 5000e-12,
        ibias: 20e-6,
        zout_ohm: None,
        cl: 5e-12,
    };
    let amp = OpAmp::design(
        &tech,
        OpAmpTopology::miller(MirrorTopology::Simple, false),
        spec,
    )
    .expect("sizes on 0.5um");
    let tb = amp.testbench_open_loop(&tech).expect("testbench");
    let op = dc_operating_point(&tb, &tech).expect("dc");
    let out = tb.find_node("out").expect("out");
    let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(100.0, 2e9, 8).unwrap()).expect("ac");
    let gain = measure::dc_gain(&sweep, out).unwrap();
    let ugf = measure::unity_gain_frequency(&sweep, out).expect("crosses unity");
    let pm = measure::phase_margin(&sweep, out).expect("has pm");
    assert!(gain >= 150.0 * 0.75, "0.5um gain {gain}");
    assert!(ugf >= 10e6 * 0.6, "0.5um UGF {ugf}");
    assert!(pm > 30.0, "0.5um PM {pm}");
}

#[test]
fn level3_models_are_active_at_0p5um() {
    // The 0.5 µm cards carry velocity saturation; the same geometry must
    // show less drive than the square law predicts at high overdrive.
    use ape_repro::mos::{evaluate, BiasPoint};
    use ape_repro::netlist::MosGeometry;
    let tech = tech_05();
    let mut card = tech.nmos().unwrap().clone();
    card.level = ape_repro::netlist::MosLevel::Level3;
    let geom = MosGeometry::new(10e-6, 0.5e-6);
    let e3 = evaluate(
        &card,
        &geom,
        BiasPoint {
            vgs: 2.5,
            vds: 3.0,
            vsb: 0.0,
        },
    );
    let mut card1 = card.clone();
    card1.level = ape_repro::netlist::MosLevel::Level1;
    card1.theta = 0.0;
    card1.vmax = 0.0;
    let e1 = evaluate(
        &card1,
        &geom,
        BiasPoint {
            vgs: 2.5,
            vds: 3.0,
            vsb: 0.0,
        },
    );
    assert!(
        e3.ids < 0.7 * e1.ids,
        "velocity saturation must bite at 0.5um: L3 {} vs L1 {}",
        e3.ids,
        e1.ids
    );
}

#[test]
fn estimator_consistency_across_both_processes() {
    // The same spec sized on both processes: the newer one is faster
    // (higher kp) so its devices are smaller for the same gm.
    let spec_gm = 200e-6;
    let spec_id = 20e-6;
    let t12 = Technology::default_1p2um();
    let t05 = tech_05();
    let m12 = ape_repro::mos::sizing::size_for_gm_id(t12.nmos().unwrap(), spec_gm, spec_id, 2.4e-6)
        .expect("sizes 1.2um");
    let m05 = ape_repro::mos::sizing::size_for_gm_id(t05.nmos().unwrap(), spec_gm, spec_id, 2.4e-6)
        .expect("sizes 0.5um");
    assert!(
        m05.geometry.w < m12.geometry.w,
        "0.5um width {} should be below 1.2um width {}",
        m05.geometry.w,
        m12.geometry.w
    );
}
