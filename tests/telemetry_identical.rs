// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Acceptance gate: estimation results are bit-identical whether telemetry
//! is off (no sink), a `NullSink`, the registry-backed `SummarySink`, or a
//! span-buffering `ChromeTraceSink` is installed. Telemetry observes the
//! estimator; it must never perturb a single bit of its output.
//!
//! One `#[test]` only: the probe sink is process-global and this file gets
//! its own test binary, so nothing else can race the installs.

use ape_repro::ape::basic::MirrorTopology;
use ape_repro::ape::graph::reset_thread_graph;
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::netlist::Technology;
use ape_repro::probe::{ChromeTraceSink, NullSink, SummarySink};
use std::sync::Arc;

/// Every f64 the design run produces, as exact bit patterns.
fn design_bits(tech: &Technology) -> Vec<u64> {
    reset_thread_graph();
    let mut bits = Vec::new();
    for (i, mirror) in [MirrorTopology::Simple, MirrorTopology::Wilson]
        .into_iter()
        .enumerate()
    {
        let spec = OpAmpSpec {
            gain: 180.0 + 25.0 * i as f64,
            ugf_hz: 4e6,
            area_max_m2: 20_000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        };
        let amp = OpAmp::design(tech, OpAmpTopology::miller(mirror, false), spec)
            .expect("design succeeds");
        for v in [
            amp.perf.dc_gain.unwrap_or(f64::NAN),
            amp.perf.ugf_hz.unwrap_or(f64::NAN),
            amp.perf.bw_hz.unwrap_or(f64::NAN),
            amp.perf.power_w,
            amp.perf.gate_area_m2,
            amp.perf.slew_v_per_s.unwrap_or(f64::NAN),
        ] {
            bits.push(v.to_bits());
        }
    }
    bits
}

#[test]
fn estimation_is_bit_identical_under_every_sink() {
    let tech = Technology::default_1p2um();

    ape_repro::probe::uninstall();
    let baseline = design_bits(&tech);

    ape_repro::probe::install(Arc::new(NullSink));
    let with_null = design_bits(&tech);

    ape_repro::probe::install(Arc::new(SummarySink::new()));
    let with_summary = design_bits(&tech);

    ape_repro::probe::install(Arc::new(ChromeTraceSink::new()));
    let with_chrome = design_bits(&tech);

    ape_repro::probe::uninstall();

    assert_eq!(baseline, with_null, "NullSink changed estimation bits");
    assert_eq!(
        baseline, with_summary,
        "registry-backed SummarySink changed estimation bits"
    );
    assert_eq!(
        baseline, with_chrome,
        "span capture changed estimation bits"
    );
}
