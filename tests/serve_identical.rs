// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! The daemon's contract: answers over the wire are **bit-identical** to
//! calling `OpAmp::design` directly — same floats, same rendering — and
//! the shared estimation graph actually carries traffic *across
//! connections* (hit rate > 0), so a resident daemon is a cache, not just
//! a socket in front of the library.
//!
//! The server runs with `isolate_sizing: true` so every request reads
//! through the shared store: cross-connection hits become deterministic
//! instead of depending on which worker happened to warm its local graph.

use ape_repro::ape::basic::MirrorTopology;
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::netlist::Technology;
use ape_repro::serve::json::{n, obj, s, Value};
use ape_repro::serve::proto::design_result;
use ape_repro::serve::{Client, Server, ServerConfig};

fn spec(gain: f64, cl: f64) -> OpAmpSpec {
    OpAmpSpec {
        gain,
        ugf_hz: 4e6,
        area_max_m2: 20e-9,
        ibias: 1e-5,
        zout_ohm: None,
        cl,
    }
}

fn design_fields(gain: f64, cl: f64) -> Value {
    obj([
        ("topology", obj([("mirror", s("simple"))])),
        (
            "spec",
            obj([
                ("gain", n(gain)),
                ("ugf_hz", n(4e6)),
                ("area_max_m2", n(20e-9)),
                ("ibias", n(1e-5)),
                ("cl", n(cl)),
            ]),
        ),
    ])
}

/// Wire answers must render byte-for-byte like the direct library call.
#[test]
fn daemon_results_are_bit_identical_and_shared_across_connections() {
    let tech = Technology::default_1p2um();
    let config = ServerConfig {
        workers: 2,
        shared_graph: true,
        isolate_sizing: true,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", tech.clone(), config).expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    // Connection 1: a small grid, all distinct specs.
    let mut conn1 = Client::connect(addr).expect("conn1");
    let grid: Vec<(f64, f64)> = (0..4).map(|i| (120.0 + 40.0 * i as f64, 8e-12)).collect();
    let mut wire = Vec::new();
    for &(gain, cl) in &grid {
        let reply = conn1.call("design", design_fields(gain, cl)).expect("call");
        wire.push((gain, cl, reply.outcome.expect("designs")));
    }

    // Connection 2: same gains, different load — shares every diff-pair
    // subtree with connection 1's requests, so with per-job sizing
    // isolation the shared store *must* serve hits across connections.
    let mut conn2 = Client::connect(addr).expect("conn2");
    for &(gain, _) in &grid {
        let reply = conn2
            .call("design", design_fields(gain, 12e-12))
            .expect("call");
        wire.push((gain, 12e-12, reply.outcome.expect("designs")));
    }

    // Bit-identical: render the wire value and the direct library result
    // through the same canonical renderer and compare bytes.
    let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
    for (gain, cl, value) in &wire {
        let direct = OpAmp::design(&tech, topo, spec(*gain, *cl)).expect("direct design");
        assert_eq!(
            value.render(),
            design_result(&direct).render(),
            "wire result diverged from direct OpAmp::design at gain={gain} cl={cl}"
        );
    }

    // Shared-graph traffic crossed connections.
    let stats = conn2
        .call("stats", obj([]))
        .expect("stats")
        .outcome
        .expect("ok");
    let hits = stats
        .get("shared_graph")
        .and_then(|g| g.get("hits"))
        .and_then(Value::as_f64)
        .expect("shared_graph.hits in stats");
    assert!(
        hits > 0.0,
        "no shared-graph hits across connections (stats: {})",
        stats.render()
    );

    handle.stop();
}

/// Tenant routing end-to-end: a card registered over one connection is
/// used for designs on another, and the answer matches the direct call on
/// that card — not the default.
#[test]
fn registered_tenant_answers_match_direct_design_on_that_card() {
    let server = Server::bind(
        "127.0.0.1:0",
        Technology::default_1p2um(),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    let mut admin = Client::connect(addr).expect("admin conn");
    let reg = admin
        .call("register_tech", obj([("base", s("0p5um"))]))
        .expect("register")
        .outcome
        .expect("registers");
    let fp = reg
        .get("technology")
        .and_then(Value::as_str)
        .expect("fingerprint")
        .to_string();

    let mut conn = Client::connect(addr).expect("tenant conn");
    let mut fields = design_fields(180.0, 8e-12);
    if let Value::Obj(map) = &mut fields {
        map.insert("technology".to_string(), s(&fp));
    }
    let wire = conn
        .call("design", fields)
        .expect("call")
        .outcome
        .expect("designs");

    let tech05 = Technology::default_0p5um();
    let direct = OpAmp::design(
        &tech05,
        OpAmpTopology::miller(MirrorTopology::Simple, false),
        spec(180.0, 8e-12),
    )
    .expect("direct 0.5um design");
    assert_eq!(
        wire.render(),
        design_result(&direct).render(),
        "tenant-routed result diverged from direct 0.5um design"
    );

    handle.stop();
}
