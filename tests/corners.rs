// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Process-corner robustness: APE designs sized at the typical corner must
//! stay alive — and close to spec — at the four fast/slow extremes.

use ape_repro::ape::basic::MirrorTopology;
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::netlist::{Corner, Technology};
use ape_repro::spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

#[test]
fn opamp_survives_all_corners() {
    let tt = Technology::default_1p2um();
    let spec = OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    };
    let amp = OpAmp::design(
        &tt,
        OpAmpTopology::miller(MirrorTopology::Simple, false),
        spec,
    )
    .expect("sizes at TT");
    let tb = amp.testbench_open_loop(&tt).expect("testbench");
    let mut gains = Vec::new();
    for corner in Corner::all() {
        let tech = tt.corner(corner);
        let op =
            dc_operating_point(&tb, &tech).unwrap_or_else(|e| panic!("{corner}: dc failed: {e}"));
        let out = tb.find_node("out").expect("out");
        let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(100.0, 1e9, 8).unwrap())
            .unwrap_or_else(|e| panic!("{corner}: ac failed: {e}"));
        let gain = measure::dc_gain(&sweep, out).unwrap();
        let ugf = measure::unity_gain_frequency(&sweep, out)
            .unwrap_or_else(|e| panic!("{corner}: no crossover: {e}"));
        let pm = measure::phase_margin(&sweep, out)
            .unwrap_or_else(|e| panic!("{corner}: no phase margin: {e}"));
        // Functional at every corner: real gain, real bandwidth, stable.
        assert!(gain > 100.0, "{corner}: gain collapsed to {gain}");
        assert!(ugf > 2.5e6, "{corner}: UGF collapsed to {ugf}");
        assert!(pm > 30.0, "{corner}: unstable, PM {pm}");
        gains.push((corner, gain, ugf));
    }
    // The corners must actually move the circuit: FF ≠ SS response.
    let ugf_ff = gains.iter().find(|g| g.0 == Corner::Ff).expect("ff ran").2;
    let ugf_ss = gains.iter().find(|g| g.0 == Corner::Ss).expect("ss ran").2;
    assert!(
        ugf_ff > ugf_ss,
        "fast corner should be faster: FF {ugf_ff} vs SS {ugf_ss}"
    );
}

#[test]
fn corner_shifts_bias_currents_as_expected() {
    // A simple mirror at SS carries less current for the same gate drive
    // than at FF — the defining corner behaviour.
    use ape_repro::netlist::{Circuit, MosGeometry, MosPolarity};
    let tt = Technology::default_1p2um();
    let mut c = Circuit::new("bias");
    let g = c.node("g");
    let d = c.node("d");
    c.add_vdc("VG", g, Circuit::GROUND, 1.2).unwrap();
    c.add_vdc("VD", d, Circuit::GROUND, 2.5).unwrap();
    c.add_mosfet(
        "M1",
        d,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        MosPolarity::Nmos,
        "CMOSN",
        MosGeometry::new(10e-6, 2.4e-6),
    )
    .unwrap();
    let current_at = |corner: Corner| {
        let tech = tt.corner(corner);
        let op = dc_operating_point(&c, &tech).unwrap();
        op.mos["M1"].eval.ids
    };
    let i_ff = current_at(Corner::Ff);
    let i_tt = current_at(Corner::Tt);
    let i_ss = current_at(Corner::Ss);
    assert!(
        i_ff > i_tt && i_tt > i_ss,
        "FF {i_ff} / TT {i_tt} / SS {i_ss}"
    );
    // The spread is substantial but bounded.
    assert!(
        i_ff / i_ss > 1.2 && i_ff / i_ss < 4.0,
        "spread {}",
        i_ff / i_ss
    );
}
