//! Cross-crate property-based tests (proptest) over the reproduction's
//! core invariants.

use ape_repro::mos::sizing::{size_for_gm_id, size_for_id_vov, vgs_for_id};
use ape_repro::mos::{evaluate, BiasPoint};
use ape_repro::netlist::{parse_value, Circuit, MosGeometry, Technology};
use ape_repro::spice::linalg::Matrix;
use ape_repro::spice::{dc_operating_point, Complex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sizing inversion round-trips: size for (gm, id), evaluate the forward
    /// model at the returned bias, and the targets come back.
    #[test]
    fn sizing_roundtrip_gm_id(
        id_ua in 0.5f64..500.0,
        gm_per_id in 5.0f64..18.0,
        l_um in 1.2f64..10.0,
    ) {
        let tech = Technology::default_1p2um();
        let card = tech.nmos().expect("nmos");
        let id = id_ua * 1e-6;
        let gm = gm_per_id * id;
        let sized = size_for_gm_id(card, gm, id, l_um * 1e-6).expect("feasible region");
        let e = evaluate(card, &sized.geometry, BiasPoint { vgs: sized.vgs, vds: 2.5, vsb: 0.0 });
        prop_assert!((e.gm - gm).abs() / gm < 1e-3, "gm {} vs {}", e.gm, gm);
        prop_assert!((e.ids - id).abs() / id < 1e-3, "id {} vs {}", e.ids, id);
    }

    /// Width scales linearly with current at fixed overdrive.
    #[test]
    fn width_linear_in_current(
        id_ua in 1.0f64..200.0,
        vov in 0.1f64..0.8,
    ) {
        let tech = Technology::default_1p2um();
        let card = tech.nmos().expect("nmos");
        let a = size_for_id_vov(card, id_ua * 1e-6, vov, 2.4e-6).expect("sizes");
        let b = size_for_id_vov(card, 2.0 * id_ua * 1e-6, vov, 2.4e-6).expect("sizes");
        let ratio = b.geometry.w / a.geometry.w;
        prop_assert!((ratio - 2.0).abs() < 0.02, "ratio {}", ratio);
    }

    /// The drain current is monotone in vgs (the property bisection relies on).
    #[test]
    fn ids_monotone_in_vgs(
        w_um in 2.0f64..100.0,
        l_um in 1.2f64..10.0,
        vds in 0.2f64..5.0,
        v1 in 0.0f64..2.4,
        dv in 0.01f64..1.0,
    ) {
        let tech = Technology::default_1p2um();
        let card = tech.nmos().expect("nmos");
        let g = MosGeometry::new(w_um * 1e-6, l_um * 1e-6);
        let e1 = evaluate(card, &g, BiasPoint { vgs: v1, vds, vsb: 0.0 });
        let e2 = evaluate(card, &g, BiasPoint { vgs: v1 + dv, vds, vsb: 0.0 });
        prop_assert!(e2.ids >= e1.ids);
    }

    /// vgs_for_id inverts the forward model exactly.
    #[test]
    fn vgs_bisection_inverts(
        w_um in 5.0f64..200.0,
        id_ua in 1.0f64..100.0,
    ) {
        let tech = Technology::default_1p2um();
        let card = tech.nmos().expect("nmos");
        let g = MosGeometry::new(w_um * 1e-6, 2.4e-6);
        let id = id_ua * 1e-6;
        if let Ok(vgs) = vgs_for_id(card, &g, id, 2.5, 0.0) {
            let e = evaluate(card, &g, BiasPoint { vgs, vds: 2.5, vsb: 0.0 });
            prop_assert!((e.ids - id).abs() / id < 1e-5);
        }
    }

    /// LU solves random diagonally-dominant real systems to small residual.
    #[test]
    fn lu_residual_small(
        n in 2usize..24,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut m: Matrix<f64> = Matrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m[(r, c)] = next();
            }
            m[(r, r)] += n as f64; // diagonally dominant
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = m.solve(&b).expect("nonsingular");
        let ax = m.mul_vec(&x);
        let resid = ax.iter().zip(&b).map(|(a, bb)| (a - bb).abs()).fold(0.0, f64::max);
        prop_assert!(resid < 1e-9, "residual {}", resid);
    }

    /// Complex LU: conjugate-symmetric inputs give conjugate solutions.
    #[test]
    fn complex_solve_is_linear(
        re in -5.0f64..5.0,
        im in -5.0f64..5.0,
        scale in 0.5f64..4.0,
    ) {
        let mut m: Matrix<Complex> = Matrix::zeros(2);
        m[(0, 0)] = Complex::new(2.0 + re.abs(), im);
        m[(0, 1)] = Complex::new(0.3, -0.1);
        m[(1, 0)] = Complex::new(-0.2, 0.4);
        m[(1, 1)] = Complex::new(3.0, -im);
        let b = vec![Complex::new(re, im), Complex::new(1.0, -0.5)];
        let x1 = m.solve(&b).expect("nonsingular");
        let b2: Vec<Complex> = b.iter().map(|v| *v * scale).collect();
        let x2 = m.solve(&b2).expect("nonsingular");
        for (a, bb) in x1.iter().zip(&x2) {
            prop_assert!((*a * scale - *bb).norm() < 1e-9);
        }
    }

    /// Engineering-notation parsing accepts anything format_si produces.
    #[test]
    fn si_format_parse_roundtrip(
        mant in 1.0f64..999.0,
        exp in -12i32..9,
    ) {
        let v = mant * 10f64.powi(exp);
        let s = ape_repro::netlist::format_si(v, "");
        let parsed = parse_value(&s).expect("parses");
        prop_assert!((parsed - v).abs() / v < 1e-3, "{} -> {} -> {}", v, s, parsed);
    }

    /// Resistive dividers solve to the analytic value for any positive pair.
    #[test]
    fn divider_dc_solution(
        r1_k in 0.1f64..1000.0,
        r2_k in 0.1f64..1000.0,
        v in 0.1f64..10.0,
    ) {
        let tech = Technology::default_1p2um();
        let mut ckt = Circuit::new("div");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vdc("V1", a, Circuit::GROUND, v);
        ckt.add_resistor("R1", a, b, r1_k * 1e3).expect("r1");
        ckt.add_resistor("R2", b, Circuit::GROUND, r2_k * 1e3).expect("r2");
        let op = dc_operating_point(&ckt, &tech).expect("solves");
        let expect = v * r2_k / (r1_k + r2_k);
        prop_assert!((op.voltage(b) - expect).abs() < 1e-6 + 1e-6 * expect.abs());
    }

    /// Annealer results always stay inside their box constraints.
    #[test]
    fn annealer_respects_bounds(
        seed in 0u64..100,
        lo in -10.0f64..0.0,
        span in 0.1f64..20.0,
    ) {
        use ape_repro::anneal::{anneal, AnnealOptions, Schedule, VectorRanges};
        let ranges = VectorRanges::new(vec![(lo, lo + span); 3]).expect("valid");
        let opts = AnnealOptions {
            schedule: Schedule::Geometric { t0: 5.0, alpha: 0.85, moves_per_temp: 20, t_min: 1e-4 },
            max_evals: 500,
            seed,
            target_cost: f64::NEG_INFINITY,
        };
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| x * x).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        prop_assert!(ranges.contains(&r.best_state));
    }
}

/// Monotonicity of the estimator: more bias current never reduces the
/// achievable UGF of a gain stage (sampled, not proptest: design calls are
/// comparatively slow).
#[test]
fn estimator_ugf_monotone_in_current() {
    use ape_repro::ape::basic::{GainStage, GainTopology};
    let tech = Technology::default_1p2um();
    let mut last = 0.0;
    for k in 1..8 {
        let ibias = 20e-6 * k as f64;
        let g = GainStage::design(&tech, GainTopology::CmosActive, -20.0, ibias, 1e-12)
            .expect("sizes");
        let ugf = g.perf.ugf_hz.expect("has ugf");
        assert!(ugf >= last, "ugf {ugf} dropped below {last} at ibias {ibias}");
        last = ugf;
    }
}
