//! End-to-end reproduction harness for **APE — the Analog Performance
//! Estimator** (Nunez-Aldana & Vemuri, DATE 1999).
//!
//! This crate re-exports the whole workspace so the examples and
//! integration tests can exercise the paper's synthesis flow (Figure 1)
//! from one place:
//!
//! * [`netlist`] — circuits, devices, technology cards (`ape-netlist`)
//! * [`mos`] — transistor models and inverse sizing (`ape-mos`)
//! * [`spice`] — the verifying circuit simulator (`ape-spice`)
//! * [`awe`] — Asymptotic Waveform Evaluation (`ape-awe`)
//! * [`anneal`] — the simulated-annealing kernel (`ape-anneal`)
//! * [`solve`] — the optimizer portfolio behind a common `Solver` trait
//!   (`ape-solve`)
//! * [`ape`] — the hierarchical estimator, the paper's contribution
//!   (`ape-core`)
//! * [`calib`] — SPICE-anchored correction tables for the composition
//!   equations (`ape-calib`)
//! * [`oblx`] — the ASTRX/OBLX-style synthesis engine (`ape-oblx`)
//! * [`farm`] — concurrent batch estimation and design-space sweeps
//!   (`ape-farm`)
//! * [`serve`] — the persistent multi-tenant estimation daemon
//!   (`ape-serve`)
//!
//! # Example
//!
//! The quickstart flow — estimate, verify, synthesize:
//!
//! ```
//! use ape_repro::ape::basic::MirrorTopology;
//! use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
//! use ape_repro::netlist::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::default_1p2um();
//! let spec = OpAmpSpec {
//!     gain: 200.0, ugf_hz: 5e6, area_max_m2: 5000e-12,
//!     ibias: 10e-6, zout_ohm: None, cl: 10e-12,
//! };
//! let amp = OpAmp::design(&tech, OpAmpTopology::miller(MirrorTopology::Simple, false), spec)?;
//! assert!(amp.perf.dc_gain.unwrap() >= spec.gain);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ape_anneal as anneal;
pub use ape_awe as awe;
pub use ape_calib as calib;
pub use ape_core as ape;
pub use ape_farm as farm;
pub use ape_mos as mos;
pub use ape_netlist as netlist;
pub use ape_oblx as oblx;
pub use ape_probe as probe;
pub use ape_serve as serve;
pub use ape_solve as solve;
pub use ape_spice as spice;
